package benchrunner

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"sort"
	"sync"
	"time"

	"rhmd/internal/core"
	"rhmd/internal/dataset"
	"rhmd/internal/experiments"
	"rhmd/internal/features"
	"rhmd/internal/fleet"
	"rhmd/internal/monitor"
	"rhmd/internal/obs"
	"rhmd/internal/obs/slo"
	"rhmd/internal/prog"
	"rhmd/internal/scenario"
)

// Options tunes a scenario run.
type Options struct {
	// Pool is the detector pool under test. Nil trains (and caches) the
	// standard smoke-scale six-detector pool.
	Pool *core.RHMD
	// OutDir receives profile captures (default ".").
	OutDir string
	// Profile enables CPU and heap pprof capture around the replay,
	// written to BENCH_<scenario>.cpu.pprof / .heap.pprof in OutDir.
	Profile bool
	// SLO runs the standard SLO objective set against the run's
	// registry (windows compressed to the seconds scale of a scenario
	// replay) and records per-objective conformance verdicts in the
	// report — the scenario doubles as an SLO conformance run, and the
	// throughput delta against a non-SLO run measures the engine's
	// overhead. The SLO engine's own instruments go to a private
	// registry so the report's before/after diff stays clean.
	SLO bool
}

// runner is the execution surface the engine and the fleet share —
// their method sets are deliberately identical, so one replay loop
// drives both paths.
type runner interface {
	Start(ctx context.Context)
	Submit(p *prog.Program) bool
	Results() <-chan monitor.Report
	Close()
}

// sharedPool trains the standard smoke-scale pool once per process:
// LR detectors over all three feature kinds × two collection periods,
// the same fixture the root benchmarks use. Training dominates
// benchrunner startup, so every scenario in a CLI invocation shares
// it.
var (
	poolOnce sync.Once
	poolVal  *core.RHMD
	poolErr  error
)

func sharedPool() (*core.RHMD, error) {
	poolOnce.Do(func() {
		e, err := experiments.NewEnv(experiments.SmokeConfig(42))
		if err != nil {
			poolErr = err
			return
		}
		periods := []int{e.Cfg.PeriodSmall, e.Cfg.Period}
		data := map[int]*dataset.MultiWindowData{}
		for _, p := range periods {
			mw, err := e.Windows("victim", p)
			if err != nil {
				poolErr = err
				return
			}
			data[p] = mw
		}
		specs := core.PoolSpecs(features.AllKinds(), periods, "lr")
		pool, err := core.TrainPool(specs, data, e.Cfg.Seed+9)
		if err != nil {
			poolErr = err
			return
		}
		poolVal, poolErr = core.New(pool, e.Cfg.Seed+10)
	})
	return poolVal, poolErr
}

// Run compiles the scenario and replays it: submit every event in
// order (honouring inter-arrival delays) against a single engine or a
// fleet per the spec, measure exact client-side verdict latencies,
// snapshot the metrics registry before and after, and assemble the
// BENCH report. The corpus is deterministic in the spec; wall-clock
// numbers of course are not.
func Run(spec scenario.Spec, opts Options) (*Report, error) {
	c, err := scenario.Compile(spec)
	if err != nil {
		return nil, err
	}
	pool := opts.Pool
	if pool == nil {
		if pool, err = sharedPool(); err != nil {
			return nil, err
		}
	}
	if opts.OutDir == "" {
		opts.OutDir = "."
	}

	norm := c.Spec // normalized copy: defaults filled
	tmpl := monitor.Config{
		Workers:        norm.Engine.Workers,
		QueueDepth:     norm.Engine.QueueDepth,
		TraceLen:       norm.Corpus.TraceLen,
		WindowDeadline: norm.Engine.WindowDeadline,
		Injector:       c.Injector,
	}
	if tmpl.QueueDepth <= 0 {
		tmpl.QueueDepth = len(c.Events)
	}
	if tmpl.WindowDeadline <= 0 {
		tmpl.WindowDeadline = 2 * time.Second
	}

	reg := obs.NewRegistry()
	var run runner
	var fl *fleet.Fleet
	if norm.Engine.Shards > 1 {
		fl, err = fleet.New(pool, fleet.Config{
			Shards:  norm.Engine.Shards,
			Engine:  tmpl,
			Script:  c.Script,
			Metrics: reg,
		})
		if err != nil {
			return nil, err
		}
		run = fl
	} else {
		tmpl.Metrics = reg
		eng, err := monitor.New(pool, tmpl)
		if err != nil {
			return nil, err
		}
		run = eng
	}

	var sloEng *slo.Engine
	var sloStop, sloDone chan struct{}
	if opts.SLO {
		objs := slo.DefaultObjectives(0)
		if norm.Engine.Shards > 1 {
			objs = slo.FleetObjectives(0, norm.Engine.Shards, 0)
		}
		sloEng, err = slo.New(slo.Config{
			Source:  reg,
			Metrics: obs.NewRegistry(),
			Now:     time.Now,
			// A scenario replay lasts seconds, not hours: compress the
			// alert windows to that scale so burn rates are meaningful
			// within one run.
			Interval: 50 * time.Millisecond,
			Windows: slo.Windows{
				FastShort: 250 * time.Millisecond,
				FastLong:  time.Second,
				SlowShort: 500 * time.Millisecond,
				SlowLong:  2 * time.Second,
			},
			Objectives: objs,
		})
		if err != nil {
			return nil, err
		}
		sloStop = make(chan struct{})
		sloDone = make(chan struct{})
		go func() {
			defer close(sloDone)
			sloEng.Run(sloStop)
		}()
	}

	rep := &Report{
		Schema:      SchemaVersion,
		Scenario:    norm.Name,
		Description: norm.Description,
		Seed:        norm.Seed,
		Fingerprint: fmt.Sprintf("%016x", c.Fingerprint()),
		Shards:      norm.Engine.Shards,
		Workers:     tmpl.Workers,
		Events:      len(c.Events),
		Evasive:     c.EvasiveCount(),
	}
	rep.GoVersion, rep.Revision, _ = buildID()

	var profiles Profiles
	var cpuFile *os.File
	if opts.Profile {
		cpuPath := filepath.Join(opts.OutDir, "BENCH_"+norm.Name+".cpu.pprof")
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close() //rhmd:ignore errclose best-effort cleanup on error path
			return nil, err
		}
		profiles.CPU = cpuPath
	}

	// Settle the heap so Mallocs/TotalAlloc deltas measure the replay,
	// not leftover garbage from pool training.
	runtime.GC()
	var msBefore runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	before := reg.Snapshot()

	submitted := make([]time.Time, len(c.Events))
	received := make(map[string]time.Duration, len(c.Events))
	start := time.Now()
	run.Start(context.Background())
	//rhmd:ignore goroutineleak bounded by the finite compiled corpus: the loop submits len(c.Events) programs, then Close()s the run, which ends the consumer below
	go func() {
		for i, e := range c.Events {
			if e.Delay > 0 {
				time.Sleep(e.Delay)
			}
			submitted[i] = time.Now()
			run.Submit(e.Program)
		}
		run.Close()
	}()
	// Index events by name once; every name is unique by construction
	// ("<stream>#<base>-<index>"), so a verdict attributes exactly.
	byName := make(map[string]int, len(c.Events))
	for i, e := range c.Events {
		byName[e.Program.Name] = i
	}
	for r := range run.Results() {
		if i, ok := byName[r.Program]; ok {
			received[r.Program] = time.Since(submitted[i])
		}
	}
	wall := time.Since(start)
	if sloEng != nil {
		close(sloStop)
		<-sloDone
		// One final deterministic tick so the verdicts cover the whole
		// replay even if the last ticker interval never fired.
		sloEng.Tick()
	}

	after := reg.Snapshot()
	var msAfter runtime.MemStats
	runtime.ReadMemStats(&msAfter)
	if opts.Profile {
		pprof.StopCPUProfile()
		if err := cpuFile.Close(); err != nil {
			return nil, err
		}
		heapPath := filepath.Join(opts.OutDir, "BENCH_"+norm.Name+".heap.pprof")
		hf, err := os.Create(heapPath)
		if err != nil {
			return nil, err
		}
		runtime.GC()
		err = pprof.WriteHeapProfile(hf)
		if cerr := hf.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return nil, err
		}
		profiles.Heap = heapPath
		rep.Profiles = &profiles
	}

	rep.WallSeconds = wall.Seconds()
	rep.Counters = gatherCounters(run, fl)
	if rep.Counters.Processed > 0 {
		rep.ThroughputPerSec = float64(rep.Counters.Processed) / wall.Seconds()
		rep.AllocsPerOp = (msAfter.Mallocs - msBefore.Mallocs) / rep.Counters.Processed
		rep.BytesPerOp = (msAfter.TotalAlloc - msBefore.TotalAlloc) / rep.Counters.Processed
	}
	rep.Latency.Exact = exactPercentiles(received)
	// The engine path owns its registry, so the verdict-latency
	// histogram is in the diff; fleet shards keep private per-generation
	// registries and contribute no histogram here.
	if hv := after.Diff(before).Histogram("rhmd_monitor_verdict_latency_seconds"); hv != nil && hv.Count > 0 {
		rep.Latency.Histogram = &Percentiles{
			P50ms:   1000 * hv.Quantile(0.50),
			P95ms:   1000 * hv.Quantile(0.95),
			P99ms:   1000 * hv.Quantile(0.99),
			Samples: hv.Count,
		}
	}
	if sloEng != nil {
		for _, o := range sloEng.Status().Objectives {
			rep.SLO = append(rep.SLO, SLOVerdict{
				Objective:       o.Name,
				Target:          o.Target,
				State:           o.State,
				BadRatio:        o.BadRatio,
				BudgetRemaining: o.BudgetRemaining,
				BurnFast:        math.Min(o.BurnFastShort, o.BurnFastLong),
				BurnSlow:        math.Min(o.BurnSlowShort, o.BurnSlowLong),
			})
		}
	}
	return rep, nil
}

// buildID adapts obs.BuildInfo to the report fields, suffixing a dirty
// worktree the way Go's own -buildvcs stamping is usually rendered.
func buildID() (goversion, revision, modified string) {
	goversion, revision, modified = obs.BuildInfo()
	if modified == "true" && revision != "unknown" {
		revision += "-dirty"
	}
	return
}

// gatherCounters folds the run's terminal stats into the report shape:
// engine Stats directly, or fleet-level counters plus per-shard sums.
func gatherCounters(run runner, fl *fleet.Fleet) Counters {
	if fl == nil {
		s := run.(*monitor.Engine).Stats()
		return Counters{
			Processed:          s.ProgramsProcessed,
			Shed:               s.ProgramsShed,
			Failed:             s.ProgramsFailed,
			Undurable:          s.ProgramsUndurable,
			Windows:            s.Windows,
			Flagged:            s.Flagged,
			Degraded:           s.Degraded,
			DroppedWindows:     s.DroppedWindows,
			Retries:            s.Retries,
			Timeouts:           s.Timeouts,
			Panics:             s.Panics,
			WorkerCrashes:      s.WorkerCrashes,
			CheckpointFailures: s.CheckpointFailures,
			Quarantines:        s.Quarantines,
			Restores:           s.Restores,
			PoolGeneration:     s.PoolEpoch,
			PoolSwaps:          s.PoolSwaps,
		}
	}
	fs := fl.Stats()
	out := Counters{Shed: fs.Shed, PoolGeneration: fs.PoolEpoch}
	for _, h := range fs.Health {
		s := h.Stats
		out.Processed += s.ProgramsProcessed
		out.Failed += s.ProgramsFailed
		out.Undurable += s.ProgramsUndurable
		out.Windows += s.Windows
		out.Flagged += s.Flagged
		out.Degraded += s.Degraded
		out.DroppedWindows += s.DroppedWindows
		out.Retries += s.Retries
		out.Timeouts += s.Timeouts
		out.Panics += s.Panics
		out.WorkerCrashes += s.WorkerCrashes
		out.CheckpointFailures += s.CheckpointFailures
		out.Quarantines += s.Quarantines
		out.Restores += s.Restores
		out.Restarts += h.Restarts
		out.Rerouted += h.Rerouted
		out.PoolSwaps += s.PoolSwaps
	}
	return out
}

// exactPercentiles computes exact order statistics over the measured
// client-side latencies (rank = ceil(q·n), the same convention
// obs.Quantile estimates).
func exactPercentiles(lat map[string]time.Duration) *Percentiles {
	if len(lat) == 0 {
		return nil
	}
	ms := make([]float64, 0, len(lat))
	for _, d := range lat {
		ms = append(ms, float64(d)/float64(time.Millisecond))
	}
	sort.Float64s(ms)
	pick := func(q float64) float64 {
		rank := int(math.Ceil(q * float64(len(ms))))
		if rank < 1 {
			rank = 1
		}
		return ms[rank-1]
	}
	return &Percentiles{
		P50ms:   pick(0.50),
		P95ms:   pick(0.95),
		P99ms:   pick(0.99),
		Samples: uint64(len(ms)),
	}
}
