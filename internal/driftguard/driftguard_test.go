package driftguard

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"sync"
	"testing"

	"rhmd/internal/core"
	"rhmd/internal/dataset"
	"rhmd/internal/features"
	"rhmd/internal/hmd"
	"rhmd/internal/monitor"
	"rhmd/internal/prog"
)

// fixture: a compact corpus and trained pool shared by every test in
// the package (training is the expensive part).
type fixture struct {
	programs []*prog.Program // held-out test split, true labels
	traceLen int
	pool     []*hmd.Detector
	rhmd     *core.RHMD
}

var (
	fx     *fixture
	fxOnce sync.Once
	fxErr  error
)

func getFixture(t testing.TB) *fixture {
	t.Helper()
	fxOnce.Do(func() {
		cfg := dataset.Config{BenignPerFamily: 8, MalwarePerFamily: 12, TraceLen: 30_000, Seed: 17}
		c, err := dataset.Build(cfg)
		if err != nil {
			fxErr = err
			return
		}
		groups, err := c.Split([]float64{0.7, 0.3}, 5)
		if err != nil {
			fxErr = err
			return
		}
		periods := []int{1000, 2000}
		data := map[int]*dataset.MultiWindowData{}
		for _, p := range periods {
			mw, err := dataset.ExtractWindows(groups[0], p, cfg.TraceLen)
			if err != nil {
				fxErr = err
				return
			}
			data[p] = mw
		}
		specs := core.PoolSpecs(features.AllKinds(), periods, "lr")
		pool, err := core.TrainPool(specs, data, 1)
		if err != nil {
			fxErr = err
			return
		}
		r, err := core.New(pool, 0xD21F)
		if err != nil {
			fxErr = err
			return
		}
		fx = &fixture{programs: groups[1], traceLen: cfg.TraceLen, pool: pool, rhmd: r}
	})
	if fxErr != nil {
		t.Fatal(fxErr)
	}
	return fx
}

// clonePool deep-copies a pool via its JSON persistence round trip.
func clonePool(t testing.TB, base *core.RHMD) *core.RHMD {
	t.Helper()
	var buf bytes.Buffer
	if err := core.SaveRHMD(&buf, base); err != nil {
		t.Fatal(err)
	}
	v, err := core.LoadRHMD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

// fakeSwapper records every committed pool and hands out epochs, the
// test double for an engine/fleet.
type fakeSwapper struct {
	mu    sync.Mutex
	epoch uint64
	swaps []*core.RHMD
	err   error
}

func (s *fakeSwapper) SwapPool(r *core.RHMD) (uint64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.err != nil {
		return 0, s.err
	}
	s.epoch++
	s.swaps = append(s.swaps, r)
	return s.epoch, nil
}

func (s *fakeSwapper) swapped() []*core.RHMD {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*core.RHMD(nil), s.swaps...)
}

// rep builds a synthetic verdict: correct controls whether the verdict
// matches its label, flagged/windows set the vote margin, epoch stamps
// the generation.
func rep(correct bool, flagged, windows int, epoch uint64) monitor.Report {
	return monitor.Report{Program: "p", Label: prog.Malware, Malware: correct,
		Flagged: flagged, Windows: windows, PoolEpoch: epoch}
}

// TestAgreementCollapseFiresAndCommits drives the full state machine
// without an engine: split votes collapse the agreement EWMA (labels
// stay perfect — the label-free signal fires alone), the retrained pool
// is swapped, stragglers from the old epoch are excluded from the
// canary, and a healthy canary commits the new generation as the next
// rollback target.
func TestAgreementCollapseFiresAndCommits(t *testing.T) {
	f := getFixture(t)
	next := clonePool(t, f.rhmd)
	sw := &fakeSwapper{}
	g, err := New(f.rhmd, Config{
		Swapper:         sw,
		Retrain:         func(context.Context, []*prog.Program) (*core.RHMD, error) { return next, nil },
		AccuracyFloor:   0.01, // effectively off: accuracy stays 1.0
		AgreementFloor:  0.5,
		Alpha:           0.6,
		MinSamples:      4,
		CanaryWindow:    3,
		CanaryTolerance: 0.2,
	})
	if err != nil {
		t.Fatal(err)
	}

	// Unanimous windows first (margin 1), then split votes: the margin
	// EWMA collapses below 0.5 while accuracy never moves.
	for i := 0; i < 4; i++ {
		g.Observe(rep(true, 10, 10, 0))
	}
	for i := 0; i < 8 && g.Status().DriftEvents == 0; i++ {
		g.Observe(rep(true, 5, 10, 0))
	}
	g.Wait()
	st := g.Status()
	if st.DriftEvents != 1 || st.Retrains != 1 {
		t.Fatalf("agreement collapse: drift=%d retrains=%d, want 1/1: %+v", st.DriftEvents, st.Retrains, st)
	}
	if got := sw.swapped(); len(got) != 1 || got[0] != next {
		t.Fatalf("swapper received %d pools, want the retrained one", len(got))
	}
	if st.State != "canary" || st.PoolEpoch != 1 {
		t.Fatalf("after swap: state %s epoch %d, want canary/1", st.State, st.PoolEpoch)
	}

	// Old-epoch stragglers must not count toward the canary window.
	for i := 0; i < 5; i++ {
		g.Observe(rep(true, 10, 10, 0))
	}
	if got := g.Status().CanarySeen; got != 0 {
		t.Fatalf("old-epoch stragglers counted: canary_seen=%d", got)
	}

	// Healthy new-generation verdicts: unanimous and correct → commit.
	for i := 0; i < 3; i++ {
		g.Observe(rep(true, 10, 10, 1))
	}
	st = g.Status()
	if st.Commits != 1 || st.Rollbacks != 0 || st.State != "watching" {
		t.Fatalf("canary did not commit: %+v", st)
	}

	// The committed pool is the new rollback target: run a second round,
	// fail its canary, and check the swapper receives the committed
	// generation as the rollback — not the original pool.
	g.ForceDrift("second round")
	g.Wait()
	if st := g.Status(); st.State != "canary" || st.PoolEpoch != 2 {
		t.Fatalf("second round: %+v", st)
	}
	for i := 0; i < 3; i++ {
		g.Observe(rep(false, 5, 10, 2)) // wrong and split: regression
	}
	st = g.Status()
	if st.Rollbacks != 1 {
		t.Fatalf("regressed canary did not roll back: %+v", st)
	}
	got := sw.swapped()
	if len(got) != 3 || got[2] != next {
		t.Fatalf("rollback target is not the committed generation (got %d swaps)", len(got))
	}
	if st.PoolEpoch != 3 || st.State != "watching" {
		t.Fatalf("after rollback: %+v", st)
	}
}

// TestRetrainFailureKeepsServing: a failing retrainer returns the guard
// to Watching under cooldown, never touches the swapper, and the
// cooldown suppresses an immediate re-fire.
func TestRetrainFailureKeepsServing(t *testing.T) {
	f := getFixture(t)
	sw := &fakeSwapper{}
	g, err := New(f.rhmd, Config{
		Swapper:       sw,
		Retrain:       func(context.Context, []*prog.Program) (*core.RHMD, error) { return nil, fmt.Errorf("no corpus") },
		AccuracyFloor: 0.9,
		Alpha:         1,
		MinSamples:    2,
		Cooldown:      10,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		g.Observe(rep(false, 10, 10, 0)) // accuracy 0 with alpha 1
	}
	g.Wait()
	st := g.Status()
	if st.DriftEvents != 1 || st.RetrainFailures != 1 || st.State != "watching" {
		t.Fatalf("retrain failure handling: %+v", st)
	}
	if len(sw.swapped()) != 0 {
		t.Fatal("failed retrain reached the swapper")
	}
	// Cooldown: 5 more terrible verdicts must not re-fire.
	for i := 0; i < 5; i++ {
		g.Observe(rep(false, 10, 10, 0))
	}
	g.Wait()
	if st := g.Status(); st.DriftEvents != 1 {
		t.Fatalf("drift re-fired inside cooldown: %+v", st)
	}
}

// TestIngestRingBounded: the replay buffer keeps only the most recent
// ReplayCap programs.
func TestIngestRingBounded(t *testing.T) {
	f := getFixture(t)
	g, err := New(f.rhmd, Config{
		Swapper:   &fakeSwapper{},
		Retrain:   func(_ context.Context, c []*prog.Program) (*core.RHMD, error) { return nil, fmt.Errorf("x") },
		ReplayCap: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		g.Ingest(&prog.Program{Name: fmt.Sprintf("p%d", i)})
	}
	g.Ingest(nil)
	if got := g.Status().ReplaySize; got != 4 {
		t.Fatalf("replay size %d, want 4", got)
	}
}

// TestArchiveRoundTrip: Put is idempotent, Resolve re-materializes a
// pool by fingerprint and rejects corrupt or mismatched files.
func TestArchiveRoundTrip(t *testing.T) {
	f := getFixture(t)
	dir := t.TempDir()
	a, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Put(f.rhmd); err != nil {
		t.Fatal(err)
	}
	if err := a.Put(f.rhmd); err != nil {
		t.Fatalf("idempotent Put: %v", err)
	}
	fps, err := a.Fingerprints()
	if err != nil {
		t.Fatal(err)
	}
	if len(fps) != 1 || fps[0] != f.rhmd.Fingerprint() {
		t.Fatalf("archive lists %v, want [%016x]", fps, f.rhmd.Fingerprint())
	}

	// A cold archive over the same directory resolves the pool.
	b, err := OpenArchive(dir)
	if err != nil {
		t.Fatal(err)
	}
	got, err := b.Resolve(1, f.rhmd.Fingerprint())
	if err != nil {
		t.Fatal(err)
	}
	if got.Fingerprint() != f.rhmd.Fingerprint() {
		t.Fatalf("resolved fingerprint %016x, want %016x", got.Fingerprint(), f.rhmd.Fingerprint())
	}
	if _, err := b.Resolve(1, 0xDEAD); err == nil {
		t.Fatal("Resolve invented a pool for an unknown fingerprint")
	}

	// A file whose content does not hash to its name is rejected: the
	// fingerprint check catches renames and corruption.
	evil := clonePool(t, f.rhmd)
	evil.Detectors[0].Threshold += 42
	if err := core.SaveRHMDFile(b.path(0xBEEF), evil); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Resolve(1, 0xBEEF); err == nil {
		t.Fatal("Resolve accepted a pool whose fingerprint does not match its filename")
	}
}

// TestStatusJSONAndString: the /drift payload round-trips and the report
// line renders.
func TestStatusJSONAndString(t *testing.T) {
	f := getFixture(t)
	g, err := New(f.rhmd, Config{
		Swapper: &fakeSwapper{},
		Retrain: func(_ context.Context, c []*prog.Program) (*core.RHMD, error) { return nil, fmt.Errorf("x") },
	})
	if err != nil {
		t.Fatal(err)
	}
	g.Observe(rep(true, 10, 10, 0))
	body, err := json.Marshal(g.Status())
	if err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(body, &decoded); err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"state", "pool_epoch", "accuracy_ewma", "agreement_ewma",
		"samples", "drift_events", "retrains", "rollbacks", "commits"} {
		if _, ok := decoded[key]; !ok {
			t.Errorf("status JSON missing %q: %s", key, body)
		}
	}
	if s := g.Status().String(); s == "" {
		t.Fatal("empty status line")
	}
}

// TestGuardConfigValidation: a guard without a swapper or retrainer, or
// without a serving pool, is refused.
func TestGuardConfigValidation(t *testing.T) {
	f := getFixture(t)
	if _, err := New(f.rhmd, Config{}); err == nil {
		t.Fatal("New accepted a config without Swapper/Retrain")
	}
	ok := Config{Swapper: &fakeSwapper{},
		Retrain: func(_ context.Context, c []*prog.Program) (*core.RHMD, error) { return nil, nil }}
	if _, err := New(nil, ok); err == nil {
		t.Fatal("New accepted a nil serving pool")
	}
	if _, err := New(f.rhmd, ok); err != nil {
		t.Fatal(err)
	}
}

// writeDriftReport mirrors the fleet chaos harness's FLEET_HEALTH_OUT:
// when DRIFT_REPORT_OUT is set, the e2e test drops its machine-readable
// outcome there for CI to upload as an artifact.
func writeDriftReport(t *testing.T, v any) {
	out := os.Getenv("DRIFT_REPORT_OUT")
	if out == "" {
		return
	}
	body, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(out, body, 0o644); err != nil {
		t.Fatalf("writing %s: %v", out, err)
	}
}
