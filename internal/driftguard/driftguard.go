// Package driftguard is the live arms-race loop on top of the
// monitoring engine: it watches the verdict stream for distribution
// drift — the signature of an adversary that has reverse-engineered the
// serving pool (the paper's §6 evade/retrain game, run online) —
// retrains the detector pool in the background against a bounded replay
// buffer, and commits the retrained pool through the engine's
// epoch-versioned SwapPool with an automatic canary/rollback gate.
//
// Two drift signals, complementary by design (see DESIGN.md):
//
//   - labeled-feedback accuracy: an EWMA of whether each verdict
//     matched its ground-truth label. Precise — it measures exactly the
//     damage evasion does — but it needs labels, which production
//     feedback delivers late and sparsely.
//   - inter-detector agreement: an EWMA of the per-program vote margin
//     |2·flagged/windows − 1|. Label-free and immediate — an adversary
//     tuned against part of the pool splits the vote, so the margin
//     collapses — but it also dips for benign workload shifts, so it
//     trades precision for availability.
//
// Either EWMA crossing its floor (after a minimum sample count) fires
// the drift verdict. Retraining never blocks the hot path: the guard
// observes reports from the consumer's results loop, and the retrain
// runs in its own goroutine while the old pool keeps serving. The
// canary window then compares the new pool's accuracy/agreement against
// the degraded pre-swap baseline, attributing verdicts exactly by
// Report.PoolEpoch, and rolls back to the previous generation on
// regression.
package driftguard

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"sync"

	"rhmd/internal/core"
	"rhmd/internal/monitor"
	"rhmd/internal/obs"
	"rhmd/internal/prog"
)

// State is the guard's position in the drift/retrain/canary loop.
type State int32

// Guard states: Watching accumulates drift statistics, Retraining has a
// background retrain in flight (old pool still serving), Canary is
// evaluating a freshly swapped pool against the pre-swap baseline.
const (
	Watching State = iota
	Retraining
	Canary
)

var stateNames = [...]string{"watching", "retraining", "canary"}

// String returns the state name.
func (s State) String() string {
	if int(s) < len(stateNames) {
		return stateNames[s]
	}
	return "state(?)"
}

// Swapper commits retrained pools — monitor.Engine and fleet.Fleet both
// satisfy it.
type Swapper interface {
	SwapPool(*core.RHMD) (uint64, error)
}

// Retrainer produces a retrained pool from a replay corpus. It runs on
// the guard's background goroutine and may be slow; it must not touch
// the serving engine. ctx is cancelled by Guard.Close — a long-running
// implementation should poll ctx.Err between training rounds and bail
// out; the guard also discards any result produced after cancellation,
// so ignoring ctx costs shutdown latency, never correctness.
type Retrainer func(ctx context.Context, corpus []*prog.Program) (*core.RHMD, error)

// Config tunes the guard. The zero value of every numeric field selects
// a sensible default; Swapper and Retrain are required.
type Config struct {
	// Swapper receives retrained pools (and rollbacks).
	Swapper Swapper
	// Retrain builds the next pool generation from the replay corpus.
	Retrain Retrainer
	// Archive, when non-nil, persists every retrained pool before it is
	// swapped in, so Engine.Restore can re-materialize any generation
	// after a crash (wire Archive.Resolve into monitor.Config.
	// ResolvePool). A failed archive save aborts the swap: a generation
	// that cannot be recovered must never serve.
	Archive *Archive

	// AccuracyFloor fires drift when the labeled-accuracy EWMA falls
	// below it (default 0.65).
	AccuracyFloor float64
	// AgreementFloor fires drift when the vote-margin EWMA falls below
	// it (default 0.30). Margin 1 = unanimous windows, 0 = split votes.
	AgreementFloor float64
	// Alpha is the EWMA smoothing factor (default 0.05).
	Alpha float64
	// MinSamples is the number of observed verdicts required before
	// drift can fire (default 48).
	MinSamples int
	// Cooldown is the number of verdicts after a swap, rollback or
	// failed retrain during which drift will not re-fire (default
	// 2×MinSamples).
	Cooldown int
	// CanaryWindow is the number of new-generation verdicts the canary
	// collects before deciding commit vs rollback (default 32).
	CanaryWindow int
	// CanaryTolerance is how far below the pre-swap baseline the new
	// pool's canary accuracy or agreement may fall before the guard
	// rolls back (default 0.15).
	CanaryTolerance float64
	// ReplayCap bounds the replay buffer of recent programs the
	// retrainer trains on (default 256).
	ReplayCap int

	// Metrics receives the rhmd_drift_* instruments (nil = a private
	// registry).
	Metrics *obs.Registry
	// Tracer, when non-nil, receives drift/canary lifecycle events.
	Tracer *obs.Tracer
	// OnRollback, when non-nil, is called (off the guard lock) after a
	// canary rollback lands — the incident flight recorder's trigger:
	// a rollback means a retrained pool regressed in production, which
	// is exactly the moment to freeze a diagnostic bundle.
	OnRollback func(detail string)
	// OnEvent, when non-nil, is called for each lifecycle step (drift
	// fired, retrain done/failed, canary commit/rollback) — the CLI's
	// progress hook. Called with the guard's lock NOT held.
	OnEvent func(kind, detail string)
}

func (c *Config) fill() error {
	if c.Swapper == nil || c.Retrain == nil {
		return fmt.Errorf("driftguard: Config needs a Swapper and a Retrain func")
	}
	if c.AccuracyFloor <= 0 {
		c.AccuracyFloor = 0.65
	}
	if c.AgreementFloor <= 0 {
		c.AgreementFloor = 0.30
	}
	if c.Alpha <= 0 || c.Alpha > 1 {
		c.Alpha = 0.05
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 48
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 2 * c.MinSamples
	}
	if c.CanaryWindow <= 0 {
		c.CanaryWindow = 32
	}
	if c.CanaryTolerance <= 0 {
		c.CanaryTolerance = 0.15
	}
	if c.ReplayCap <= 0 {
		c.ReplayCap = 256
	}
	return nil
}

// instruments is the guard's registry-backed accounting.
type instruments struct {
	accuracy  *obs.Gauge // labeled-accuracy EWMA
	agreement *obs.Gauge // vote-margin EWMA
	state     *obs.Gauge // 0 watching, 1 retraining, 2 canary

	driftEvents     *obs.Counter
	retrains        *obs.Counter
	retrainFailures *obs.Counter
	rollbacks       *obs.Counter
	commits         *obs.Counter
}

func newInstruments(reg *obs.Registry) *instruments {
	outcomes := reg.CounterVec("rhmd_drift_outcomes_total",
		"Drift-loop lifecycle outcomes.", "kind")
	return &instruments{
		accuracy: reg.Gauge("rhmd_drift_accuracy_ewma",
			"EWMA of labeled verdict accuracy on the live stream."),
		agreement: reg.Gauge("rhmd_drift_agreement_ewma",
			"EWMA of the per-program vote margin |2·flagged/windows − 1|."),
		state: reg.Gauge("rhmd_drift_state",
			"Drift-guard state: 0 watching, 1 retraining, 2 canary."),
		driftEvents:     outcomes.With("drift"),
		retrains:        outcomes.With("retrain"),
		retrainFailures: outcomes.With("retrain-failure"),
		rollbacks:       outcomes.With("rollback"),
		commits:         outcomes.With("commit"),
	}
}

// Guard is the drift supervisor. Feed it every submitted program via
// Ingest (replay buffer) and every consumed report via Observe (drift
// statistics + state machine). Both are cheap; the expensive work —
// retraining — happens on a background goroutine the guard owns.
type Guard struct {
	cfg Config
	ins *instruments
	reg *obs.Registry

	wg sync.WaitGroup // in-flight background retrains
	// ctx is the lifetime of the guard's background work; Close cancels
	// it so an in-flight retrain stops instead of outliving shutdown.
	ctx    context.Context
	cancel context.CancelFunc

	mu    sync.Mutex
	state State
	// replay is a bounded ring of recently submitted programs, the
	// retraining corpus.
	replay []*prog.Program
	next   int // ring write cursor

	accEWMA, agrEWMA float64
	samples          int
	cooldown         int

	// prev is the generation to roll back to; candidate is the pool
	// under canary evaluation; epoch is the generation the canary is
	// attributing verdicts to (set by the retrain goroutine after a
	// successful swap).
	prev      *core.RHMD
	candidate *core.RHMD
	epoch     uint64

	// Pre-swap baseline (the degraded EWMAs at drift time) and canary
	// accumulators over new-generation verdicts only.
	baselineAcc, baselineAgr float64
	canarySeen               int
	canaryCorrect            int
	canaryAgrSum             float64

	lastReason string
}

// New validates the configuration and builds a guard. current is the
// pool serving at attach time — the first rollback target.
func New(current *core.RHMD, cfg Config) (*Guard, error) {
	if current == nil || current.Size() == 0 {
		return nil, fmt.Errorf("driftguard: New needs the serving pool")
	}
	if err := cfg.fill(); err != nil {
		return nil, err
	}
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	if cfg.Archive != nil {
		// The serving pool is the first rollback target; archive it up
		// front so a rollback's WAL entry is resolvable after a crash.
		if err := cfg.Archive.Put(current); err != nil {
			return nil, err
		}
	}
	g := &Guard{
		cfg:    cfg,
		ins:    newInstruments(reg),
		reg:    reg,
		replay: make([]*prog.Program, 0, cfg.ReplayCap),
		prev:   current,
	}
	g.ctx, g.cancel = context.WithCancel(context.Background())
	g.ins.state.Set(float64(Watching))
	return g, nil
}

// Registry returns the registry the guard's instruments live in.
func (g *Guard) Registry() *obs.Registry { return g.reg }

// Ingest records a submitted program into the bounded replay buffer.
// Call it for every successful Submit; it never blocks and keeps only
// the most recent ReplayCap programs.
func (g *Guard) Ingest(p *prog.Program) {
	if p == nil {
		return
	}
	g.mu.Lock()
	if len(g.replay) < g.cfg.ReplayCap {
		g.replay = append(g.replay, p)
	} else {
		g.replay[g.next] = p
		g.next = (g.next + 1) % g.cfg.ReplayCap
	}
	g.mu.Unlock()
}

// Observe feeds one consumed report into the drift statistics and runs
// the state machine: it can fire drift (spawning the background
// retrain) or, in canary state, decide commit vs rollback. Call it from
// the results loop for every report.
func (g *Guard) Observe(rep monitor.Report) {
	if rep.Err != nil || rep.Windows == 0 {
		return
	}
	correct := rep.Malware == (rep.Label == prog.Malware)
	margin := 2*float64(rep.Flagged)/float64(rep.Windows) - 1
	if margin < 0 {
		margin = -margin
	}

	var fire bool
	var notify func()
	g.mu.Lock()
	if g.samples == 0 {
		g.accEWMA, g.agrEWMA = b2f(correct), margin
	} else {
		a := g.cfg.Alpha
		g.accEWMA = (1-a)*g.accEWMA + a*b2f(correct)
		g.agrEWMA = (1-a)*g.agrEWMA + a*margin
	}
	g.samples++
	g.ins.accuracy.Set(g.accEWMA)
	g.ins.agreement.Set(g.agrEWMA)

	switch g.state {
	case Watching:
		if g.cooldown > 0 {
			g.cooldown--
			break
		}
		if g.samples >= g.cfg.MinSamples {
			switch {
			case g.accEWMA < g.cfg.AccuracyFloor:
				fire = true
				g.lastReason = fmt.Sprintf("accuracy EWMA %.3f below floor %.3f", g.accEWMA, g.cfg.AccuracyFloor)
			case g.agrEWMA < g.cfg.AgreementFloor:
				fire = true
				g.lastReason = fmt.Sprintf("agreement EWMA %.3f below floor %.3f", g.agrEWMA, g.cfg.AgreementFloor)
			}
			if fire {
				g.fireDriftLocked(g.lastReason)
			}
		}
	case Canary:
		// Exact attribution: only verdicts the new generation produced
		// count; stragglers that started on the old pool carry its epoch
		// and are excluded.
		if rep.PoolEpoch != g.epoch {
			break
		}
		g.canarySeen++
		if correct {
			g.canaryCorrect++
		}
		g.canaryAgrSum += margin
		if g.canarySeen >= g.cfg.CanaryWindow {
			notify = g.decideCanaryLocked()
		}
	}
	g.mu.Unlock()
	if notify != nil {
		notify()
	}
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// ForceDrift fires the drift verdict immediately (ops lever: a known
// campaign, a scheduled refresh). No-op unless the guard is Watching.
func (g *Guard) ForceDrift(reason string) {
	g.mu.Lock()
	fired := false
	if g.state == Watching {
		g.lastReason = "forced: " + reason
		g.fireDriftLocked(g.lastReason)
		fired = true
	}
	g.mu.Unlock()
	if fired {
		g.event("drift", "forced: "+reason)
	}
}

// fireDriftLocked transitions Watching → Retraining and launches the
// background retrain over a snapshot of the replay buffer. Callers hold
// g.mu.
func (g *Guard) fireDriftLocked(reason string) {
	g.state = Retraining
	g.ins.state.Set(float64(Retraining))
	g.ins.driftEvents.Inc()
	// The degraded EWMAs at drift time are the canary baseline: the
	// retrained pool must beat (or at least match, within tolerance)
	// what the old pool was doing when we gave up on it.
	g.baselineAcc, g.baselineAgr = g.accEWMA, g.agrEWMA
	corpus := append([]*prog.Program(nil), g.replay...)
	g.tracerEmit(obs.EvDrift, reason)

	g.wg.Add(1)
	go g.retrain(g.ctx, corpus, reason)
}

// retrain is the background arm: build the next generation, archive it,
// swap it in, enter canary. Any failure returns the guard to Watching
// under cooldown with the old pool untouched — the hot path never
// notices. ctx cancellation (Guard.Close) abandons the round before the
// swap: a pool built during shutdown must never start serving.
func (g *Guard) retrain(ctx context.Context, corpus []*prog.Program, reason string) {
	defer g.wg.Done()
	g.event("drift", reason)

	fail := func(detail string) {
		g.mu.Lock()
		g.state = Watching
		g.cooldown = g.cfg.Cooldown
		g.ins.state.Set(float64(Watching))
		g.ins.retrainFailures.Inc()
		g.mu.Unlock()
		g.tracerEmit(obs.EvDrift, "retrain failed: "+detail)
		g.event("retrain-failure", detail)
	}

	pool, err := g.cfg.Retrain(ctx, corpus)
	if err != nil {
		fail(err.Error())
		return
	}
	if ctx.Err() != nil {
		fail("cancelled: " + ctx.Err().Error())
		return
	}
	if g.cfg.Archive != nil {
		// Archive before swap: once this pool serves, a crash must be
		// able to re-materialize it. Unarchivable ⇒ unswappable.
		if err := g.cfg.Archive.Put(pool); err != nil {
			fail("archiving pool: " + err.Error())
			return
		}
	}
	epoch, err := g.cfg.Swapper.SwapPool(pool)
	if err != nil {
		fail("swap: " + err.Error())
		return
	}

	g.mu.Lock()
	g.candidate = pool
	g.epoch = epoch
	g.state = Canary
	g.canarySeen, g.canaryCorrect, g.canaryAgrSum = 0, 0, 0
	g.ins.state.Set(float64(Canary))
	g.ins.retrains.Inc()
	g.mu.Unlock()
	g.event("retrain", fmt.Sprintf("epoch %d live, canary over %d verdicts", epoch, g.cfg.CanaryWindow))
}

// decideCanaryLocked evaluates the completed canary window and either
// commits the new generation or rolls back to the previous one. Callers
// hold g.mu; the returned func (possibly nil) must be invoked after
// unlocking (it calls OnEvent).
func (g *Guard) decideCanaryLocked() func() {
	candAcc := float64(g.canaryCorrect) / float64(g.canarySeen)
	candAgr := g.canaryAgrSum / float64(g.canarySeen)
	tol := g.cfg.CanaryTolerance

	if candAcc < g.baselineAcc-tol || candAgr < g.baselineAgr-tol {
		// Regression: the retrained pool is worse than the degraded
		// baseline it replaced. Roll back.
		detail := fmt.Sprintf("canary regression: accuracy %.3f vs baseline %.3f, agreement %.3f vs %.3f",
			candAcc, g.baselineAcc, candAgr, g.baselineAgr)
		prev := g.prev
		epoch, err := g.cfg.Swapper.SwapPool(prev)
		if err != nil {
			// Rollback failed (e.g. WAL append error): stay on the new
			// pool — it is serving and durable — but record the failure
			// and return to Watching so drift can re-fire.
			g.state = Watching
			g.cooldown = g.cfg.Cooldown
			g.ins.state.Set(float64(Watching))
			g.ins.retrainFailures.Inc()
			d := detail + "; rollback swap failed: " + err.Error()
			g.tracerEmit(obs.EvCanary, d)
			return func() { g.event("rollback-failure", d) }
		}
		g.epoch = epoch
		g.candidate = nil
		g.state = Watching
		g.cooldown = g.cfg.Cooldown
		// The old pool is serving again: resume from the baseline it had.
		g.accEWMA, g.agrEWMA = g.baselineAcc, g.baselineAgr
		g.ins.accuracy.Set(g.accEWMA)
		g.ins.agreement.Set(g.agrEWMA)
		g.ins.state.Set(float64(Watching))
		g.ins.rollbacks.Inc()
		g.tracerEmit(obs.EvCanary, detail)
		return func() {
			g.event("rollback", detail)
			if g.cfg.OnRollback != nil {
				g.cfg.OnRollback(detail)
			}
		}
	}

	// Commit: the new generation is the pool of record — a future drift
	// round rolls back to it, not to the one it replaced.
	detail := fmt.Sprintf("canary pass: accuracy %.3f (baseline %.3f), agreement %.3f (baseline %.3f)",
		candAcc, g.baselineAcc, candAgr, g.baselineAgr)
	g.prev = g.candidate
	g.candidate = nil
	g.state = Watching
	g.cooldown = g.cfg.Cooldown
	// Seed the EWMAs with the canary's fresh estimate of the new pool.
	g.accEWMA, g.agrEWMA = candAcc, candAgr
	g.samples = g.canarySeen
	g.ins.accuracy.Set(g.accEWMA)
	g.ins.agreement.Set(g.agrEWMA)
	g.ins.state.Set(float64(Watching))
	g.ins.commits.Inc()
	g.tracerEmit(obs.EvCanary, detail)
	return func() { g.event("commit", detail) }
}

// Wait blocks until any in-flight background retrain finishes. Call on
// shutdown (after Close-ing the engine) and in tests.
func (g *Guard) Wait() { g.wg.Wait() }

// Close cancels the retrain context and waits for the background arm
// to drain. After Close no retrained pool will be swapped in — a round
// racing the shutdown is abandoned and counted as a retrain failure.
// Close is the shutdown path; Wait alone is for tests that want the
// round to complete.
func (g *Guard) Close() {
	g.cancel()
	g.wg.Wait()
}

// event invokes the OnEvent hook without holding the guard lock.
func (g *Guard) event(kind, detail string) {
	if g.cfg.OnEvent != nil {
		g.cfg.OnEvent(kind, detail)
	}
}

func (g *Guard) tracerEmit(kind, detail string) {
	if g.cfg.Tracer != nil {
		g.cfg.Tracer.Emit(obs.Event{Kind: kind, Detector: -1, Window: -1, Detail: detail})
	}
}

// Status is a point-in-time snapshot of the guard, JSON-ready for the
// /drift endpoint and the CLI's survival report.
type Status struct {
	State         string  `json:"state"`
	PoolEpoch     uint64  `json:"pool_epoch"`
	AccuracyEWMA  float64 `json:"accuracy_ewma"`
	AgreementEWMA float64 `json:"agreement_ewma"`
	Samples       int     `json:"samples"`
	Cooldown      int     `json:"cooldown"`
	ReplaySize    int     `json:"replay_size"`
	CanarySeen    int     `json:"canary_seen"`
	LastReason    string  `json:"last_reason,omitempty"`

	DriftEvents     uint64 `json:"drift_events"`
	Retrains        uint64 `json:"retrains"`
	RetrainFailures uint64 `json:"retrain_failures"`
	Rollbacks       uint64 `json:"rollbacks"`
	Commits         uint64 `json:"commits"`
}

// Status snapshots the guard.
func (g *Guard) Status() Status {
	g.mu.Lock()
	st := Status{
		State:         g.state.String(),
		PoolEpoch:     g.epoch,
		AccuracyEWMA:  g.accEWMA,
		AgreementEWMA: g.agrEWMA,
		Samples:       g.samples,
		Cooldown:      g.cooldown,
		ReplaySize:    len(g.replay),
		CanarySeen:    g.canarySeen,
		LastReason:    g.lastReason,
	}
	g.mu.Unlock()
	st.DriftEvents = g.ins.driftEvents.Value()
	st.Retrains = g.ins.retrains.Value()
	st.RetrainFailures = g.ins.retrainFailures.Value()
	st.Rollbacks = g.ins.rollbacks.Value()
	st.Commits = g.ins.commits.Value()
	return st
}

// String renders the snapshot as the survival report's drift line.
func (s Status) String() string {
	return fmt.Sprintf(
		"drift:    %s, pool epoch %d; accuracy %.3f, agreement %.3f (%d samples); %d drift events, %d retrains (%d failed), %d commits, %d rollbacks",
		s.State, s.PoolEpoch, s.AccuracyEWMA, s.AgreementEWMA, s.Samples,
		s.DriftEvents, s.Retrains, s.RetrainFailures, s.Commits, s.Rollbacks)
}

// Handler returns the /drift endpoint: the Status snapshot as indented
// JSON, for mounting on the obs introspection mux.
func (g *Guard) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(g.Status())
	})
}
