package driftguard

import (
	"context"

	"rhmd/internal/core"
	"rhmd/internal/game"
	"rhmd/internal/prog"
)

// NewGameRetrainer adapts internal/game.RetrainPool into a Retrainer:
// each drift round retrains every detector of the base pool against the
// replay corpus, preserving the pool shape (specs, switching
// probabilities, key) so the result is always a valid SwapPool
// candidate. The base pool only supplies that shape — training starts
// fresh from the corpus windows — so one base serves every round.
// Successive rounds draw fresh seeds from the same injected stream via
// the round counter, keeping the whole loop a deterministic function of
// (base, seed, traffic).
func NewGameRetrainer(base *core.RHMD, traceLen int, seed uint64) Retrainer {
	var round uint64
	return func(ctx context.Context, corpus []*prog.Program) (*core.RHMD, error) {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		round++
		res, err := game.RetrainPool(base, corpus, traceLen, game.Config{Seed: seed + round})
		if err != nil {
			return nil, err
		}
		return res.Pool, nil
	}
}
