package driftguard

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"

	"rhmd/internal/core"
)

// Archive is a content-addressed pool store: one crash-safe JSON file
// per pool generation, named pool-<fingerprint>.json. The drift guard
// Puts every retrained pool here before swapping it in, and the
// monitoring engine's Restore resolves swap WAL entries back into pools
// through Resolve — wire it as monitor.Config.ResolvePool. Because
// files are keyed by fingerprint (not epoch), re-promoting an old
// generation after a rollback needs no extra writes, and two epochs
// serving the same bytes share one file.
type Archive struct {
	dir string

	mu sync.Mutex
	// loaded caches pools already materialized this process, by
	// fingerprint.
	loaded map[uint64]*core.RHMD
}

const poolFilePrefix, poolFileSuffix = "pool-", ".json"

// OpenArchive creates dir if needed and returns an archive over it.
func OpenArchive(dir string) (*Archive, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("driftguard: opening pool archive: %w", err)
	}
	return &Archive{dir: dir, loaded: map[uint64]*core.RHMD{}}, nil
}

// Dir returns the archive directory.
func (a *Archive) Dir() string { return a.dir }

func (a *Archive) path(fp uint64) string {
	return filepath.Join(a.dir, fmt.Sprintf("%s%016x%s", poolFilePrefix, fp, poolFileSuffix))
}

// Put persists the pool under its fingerprint (atomic write + checksum
// trailer via core.SaveRHMDFile). Idempotent: an already-archived
// fingerprint is a no-op, so callers can Put unconditionally.
func (a *Archive) Put(r *core.RHMD) error {
	fp := r.Fingerprint()
	a.mu.Lock()
	defer a.mu.Unlock()
	if _, ok := a.loaded[fp]; ok {
		return nil
	}
	path := a.path(fp)
	if _, err := os.Stat(path); err == nil {
		a.loaded[fp] = r
		return nil
	}
	if err := core.SaveRHMDFile(path, r); err != nil {
		return fmt.Errorf("driftguard: archiving pool %016x: %w", fp, err)
	}
	a.loaded[fp] = r
	return nil
}

// Resolve materializes the pool with the given fingerprint, verifying
// that the loaded bytes actually hash to it. The epoch is advisory
// (archives are content-addressed); the signature matches
// monitor.Config.ResolvePool so an archive plugs straight into engine
// restore.
func (a *Archive) Resolve(epoch, fingerprint uint64) (*core.RHMD, error) {
	a.mu.Lock()
	defer a.mu.Unlock()
	if r, ok := a.loaded[fingerprint]; ok {
		return r, nil
	}
	r, err := core.LoadRHMDFile(a.path(fingerprint))
	if err != nil {
		return nil, fmt.Errorf("driftguard: resolving pool epoch %d fingerprint %016x: %w",
			epoch, fingerprint, err)
	}
	if got := r.Fingerprint(); got != fingerprint {
		return nil, fmt.Errorf("driftguard: archive file for %016x hashes to %016x (corrupt or renamed)",
			fingerprint, got)
	}
	a.loaded[fingerprint] = r
	return r, nil
}

// Fingerprints lists the archived pool fingerprints (on-disk scan, not
// just the in-process cache).
func (a *Archive) Fingerprints() ([]uint64, error) {
	entries, err := os.ReadDir(a.dir)
	if err != nil {
		return nil, err
	}
	var fps []uint64
	for _, e := range entries {
		name := e.Name()
		if !strings.HasPrefix(name, poolFilePrefix) || !strings.HasSuffix(name, poolFileSuffix) {
			continue
		}
		hex := strings.TrimSuffix(strings.TrimPrefix(name, poolFilePrefix), poolFileSuffix)
		fp, err := strconv.ParseUint(hex, 16, 64)
		if err != nil {
			continue
		}
		fps = append(fps, fp)
	}
	return fps, nil
}
