package driftguard

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"sync/atomic"
	"testing"
	"time"

	"rhmd/internal/core"
	"rhmd/internal/monitor"
	"rhmd/internal/obs/incident"
	"rhmd/internal/prog"
)

// rollbackIncidentRecorder builds the flight recorder the rollback
// scenario wires into OnRollback. Bundles land in $INCIDENT_OUT (the
// drifttest make target points it at results/incidents, which CI
// uploads when the suite fails) or a per-test temp dir.
func rollbackIncidentRecorder(t *testing.T, e *monitor.Engine) (*incident.Recorder, string) {
	t.Helper()
	dir := os.Getenv("INCIDENT_OUT")
	if dir == "" {
		dir = filepath.Join(t.TempDir(), "incidents")
	}
	rec, err := incident.NewRecorder(incident.Config{Dir: dir, Now: time.Now, Registry: e.Registry()})
	if err != nil {
		t.Fatal(err)
	}
	return rec, dir
}

// flip returns a shallow clone of p with the opposite label — the test
// stand-in for a fully evasive campaign: the trace is unchanged, but
// ground-truth feedback stops matching the verdicts, exactly the signal
// evasion produces on a labeled stream.
func flip(p *prog.Program) *prog.Program {
	q := *p
	if q.Label == prog.Malware {
		q.Label = prog.Benign
	} else {
		q.Label = prog.Malware
	}
	return &q
}

// relabel returns a shallow clone of p carrying the given label.
func relabel(p *prog.Program, label prog.Label) *prog.Program {
	q := *p
	q.Label = label
	return &q
}

// TestDriftLoopEndToEnd is the tentpole acceptance run: a live engine
// under sustained load sees its labeled accuracy collapse (an evasion
// campaign), the guard fires drift, retrains in the background through
// the real game retrainer while the old pool keeps serving, archives
// and hot-swaps the new generation, and the canary commits it — with
// zero acked-verdict loss across the whole arc.
func TestDriftLoopEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("drift e2e skipped in -short mode")
	}
	f := getFixture(t)
	e, err := monitor.New(f.rhmd, monitor.Config{Workers: 4, QueueDepth: 256,
		TraceLen: f.traceLen, WindowDeadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	archive, err := OpenArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	g, err := New(f.rhmd, Config{
		Swapper:         e,
		Retrain:         NewGameRetrainer(f.rhmd, f.traceLen, 901),
		Archive:         archive,
		AccuracyFloor:   0.5,
		AgreementFloor:  0.001, // label-free signal effectively off: this run drives the labeled one
		Alpha:           0.4,
		MinSamples:      6,
		CanaryWindow:    5,
		CanaryTolerance: 2, // any canary outcome commits: the rollback arc has its own test
		Cooldown:        1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The replay buffer gets the true-labeled corpus — the retrainer
	// needs both classes.
	for _, p := range f.programs {
		g.Ingest(p)
	}

	var submitted, received, errored atomic.Int64
	e.Start(context.Background())
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rep := range e.Results() {
			received.Add(1)
			if rep.Err != nil {
				errored.Add(1)
			}
			g.Observe(rep)
		}
	}()
	submit := func(p *prog.Program) {
		for !e.Submit(p) {
			time.Sleep(time.Millisecond)
		}
		submitted.Add(1)
	}

	deadline := time.Now().Add(120 * time.Second)
	// Phase 1 — evasion campaign: flipped labels sink the accuracy EWMA
	// until drift fires.
	i := 0
	for g.Status().DriftEvents == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("drift never fired: %+v", g.Status())
		}
		submit(flip(f.programs[i%len(f.programs)]))
		i++
		time.Sleep(2 * time.Millisecond)
	}
	// Phase 2 — sustained clean load while the background retrain, swap
	// and canary run; the hot path must never stall.
	for {
		st := g.Status()
		if st.RetrainFailures > 0 {
			t.Fatalf("retrain failed: %+v", st)
		}
		if st.Commits > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("canary never committed: %+v", st)
		}
		submit(f.programs[i%len(f.programs)])
		i++
		time.Sleep(2 * time.Millisecond)
	}
	e.Close()
	<-done
	g.Wait()

	if submitted.Load() != received.Load() {
		t.Fatalf("acked-verdict loss across the swap: submitted %d, received %d", submitted.Load(), received.Load())
	}
	if errored.Load() != 0 {
		t.Fatalf("%d verdicts errored during the drift loop", errored.Load())
	}
	st := g.Status()
	if st.DriftEvents != 1 || st.Retrains != 1 || st.Commits != 1 || st.Rollbacks != 0 {
		t.Fatalf("lifecycle counters off: %+v", st)
	}
	if e.PoolEpoch() != 1 || st.PoolEpoch != 1 {
		t.Fatalf("pool epoch engine=%d guard=%d, want 1", e.PoolEpoch(), st.PoolEpoch)
	}
	if es := e.Stats(); es.PoolSwaps != 1 {
		t.Fatalf("engine counted %d swaps, want 1", es.PoolSwaps)
	}
	// Archive-before-swap: the generation now serving must be
	// re-materializable by fingerprint, or a crash right now would be
	// unrecoverable.
	if _, err := archive.Resolve(1, e.PoolFingerprint()); err != nil {
		t.Fatalf("serving generation not in the archive: %v", err)
	}

	writeDriftReport(t, struct {
		Scenario      string `json:"scenario"`
		Submitted     int64  `json:"submitted"`
		Received      int64  `json:"received"`
		PoolEpoch     uint64 `json:"pool_epoch"`
		PoolSwaps     uint64 `json:"pool_swaps"`
		Status        Status `json:"drift"`
		ArchiveDirPop int    `json:"archived_generations"`
	}{"drift-commit", submitted.Load(), received.Load(), e.PoolEpoch(), e.Stats().PoolSwaps,
		st, archivedCount(t, archive)})
}

func archivedCount(t *testing.T, a *Archive) int {
	t.Helper()
	fps, err := a.Fingerprints()
	if err != nil {
		t.Fatal(err)
	}
	return len(fps)
}

// TestCanaryRegressionRollsBackE2E injects a genuinely worse "retrained"
// pool (thresholds pushed to +inf: it never flags anything) into a live
// engine and proves the canary catches the regression and automatically
// rolls the fleet back to the previous generation — which keeps serving.
func TestCanaryRegressionRollsBackE2E(t *testing.T) {
	if testing.Short() {
		t.Skip("drift e2e skipped in -short mode")
	}
	f := getFixture(t)
	e, err := monitor.New(f.rhmd, monitor.Config{Workers: 4, QueueDepth: 256,
		TraceLen: f.traceLen, WindowDeadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}

	// Pre-pass without the guard: learn the base pool's verdict for each
	// program so phase-2 labels can be aligned with the verdicts (clean
	// baseline accuracy 1.0, independent of raw detector quality).
	e.Start(context.Background())
	verdicts := map[string]bool{}
	go func() {
		for _, p := range f.programs {
			for !e.Submit(p) {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	for len(verdicts) < len(f.programs) {
		rep := <-e.Results()
		if rep.Err != nil {
			t.Fatalf("pre-pass %s: %v", rep.Program, rep.Err)
		}
		verdicts[rep.Program] = rep.Malware
	}

	archive, err := OpenArchive(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	evil := clonePool(t, f.rhmd)
	for _, d := range evil.Detectors {
		d.Threshold = 1e300 // flags nothing, ever
	}
	rec, incDir := rollbackIncidentRecorder(t, e)
	g, err := New(f.rhmd, Config{
		Swapper:         e,
		Retrain:         func(context.Context, []*prog.Program) (*core.RHMD, error) { return evil, nil },
		Archive:         archive,
		AccuracyFloor:   0.05, // the run fires via ForceDrift, not the floors
		AgreementFloor:  0.001,
		Alpha:           0.5,
		MinSamples:      4,
		CanaryWindow:    4,
		CanaryTolerance: 0.15,
		Cooldown:        1 << 20,
		OnRollback: func(detail string) {
			_, err := rec.Trigger(incident.Cause{Kind: "drift-rollback", Detail: detail})
			if err != nil && !errors.Is(err, incident.ErrSuppressed) {
				t.Errorf("incident capture on rollback: %v", err)
			}
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	var submitted, received atomic.Int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for rep := range e.Results() {
			received.Add(1)
			if rep.Err == nil {
				g.Observe(rep)
			}
		}
	}()
	submit := func(p *prog.Program) {
		for !e.Submit(p) {
			time.Sleep(time.Millisecond)
		}
		submitted.Add(1)
	}
	aligned := func(p *prog.Program) *prog.Program {
		label := prog.Benign
		if verdicts[p.Name] {
			label = prog.Malware
		}
		return relabel(p, label)
	}

	deadline := time.Now().Add(120 * time.Second)
	waitFor := func(what string, cond func(Status) bool) Status {
		for {
			st := g.Status()
			if cond(st) {
				return st
			}
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s: %+v", what, st)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}

	// Healthy baseline: labels aligned with the base pool's verdicts.
	for i := 0; i < 8; i++ {
		submit(aligned(f.programs[i%len(f.programs)]))
	}
	waitFor("baseline samples", func(st Status) bool { return st.Samples >= 8 })

	g.ForceDrift("injected regression drill")
	waitFor("canary entry", func(st Status) bool { return st.State == "canary" })
	if e.PoolEpoch() != 1 || e.PoolFingerprint() != evil.Fingerprint() {
		t.Fatalf("evil pool not serving: epoch %d fingerprint %016x", e.PoolEpoch(), e.PoolFingerprint())
	}

	// Canary traffic labeled Malware: the evil pool calls everything
	// benign, so its canary accuracy is 0 against a baseline of 1.
	for i := 0; i < 8; i++ {
		submit(relabel(f.programs[i%len(f.programs)], prog.Malware))
	}
	st := waitFor("rollback", func(st Status) bool { return st.Rollbacks >= 1 })
	if st.Rollbacks != 1 || st.Commits != 0 || st.State != "watching" {
		t.Fatalf("rollback accounting off: %+v", st)
	}
	if e.PoolEpoch() != 2 || e.PoolFingerprint() != f.rhmd.Fingerprint() {
		t.Fatalf("rollback did not restore the previous generation: epoch %d fingerprint %016x, want 2/%016x",
			e.PoolEpoch(), e.PoolFingerprint(), f.rhmd.Fingerprint())
	}

	// The rollback tripped the flight recorder: a bundle with the
	// drift-rollback cause exists and round-trips.
	ids, err := rec.List()
	if err != nil || len(ids) == 0 {
		t.Fatalf("rollback captured no incident bundle: %d (%v)", len(ids), err)
	}
	b, err := incident.Load(nil, filepath.Join(incDir, ids[len(ids)-1]+".json"))
	if err != nil {
		t.Fatalf("rollback bundle does not round-trip: %v", err)
	}
	if b.Cause.Kind != "drift-rollback" || b.Cause.Detail == "" {
		t.Errorf("bundle cause = %+v, want drift-rollback with detail", b.Cause)
	}

	// The restored pool still serves: the stream keeps flowing after the
	// rollback.
	submit(aligned(f.programs[0]))
	e.Close()
	<-done
	g.Wait()
	// The pre-pass drained its own reports before the counting consumer
	// started, so the tallies cover only the guard-era traffic.
	if submitted.Load() != received.Load() {
		t.Fatalf("verdict loss: %d submitted, %d received", submitted.Load(), received.Load())
	}
	// Both generations that ever served are archived.
	for _, fp := range []uint64{f.rhmd.Fingerprint(), evil.Fingerprint()} {
		if _, err := archive.Resolve(0, fp); err != nil {
			t.Fatalf("generation %016x missing from archive: %v", fp, err)
		}
	}
}
