package monitor

import (
	"context"
	"encoding/json"
	"fmt"
	"time"

	"rhmd/internal/checkpoint"
	"rhmd/internal/core"
	"rhmd/internal/obs"
	"rhmd/internal/obs/span"
)

// Durability. The paper's RHMD lives in hardware, where the detector's
// state — switching weights, quarantine status, cumulative accounting —
// survives power events. This file gives the software engine the same
// property through internal/checkpoint: a periodic snapshot of the
// engine's state plus a write-ahead log of the events between
// snapshots.
//
// The recovery contract, enforced by the crash-injection and
// kill-restart tests:
//
//   - every verdict the engine has delivered (a Report handed to the
//     Results consumer) is durable before it is visible: the WAL append
//     is fsynced before the report is sent, so a consumer-observed
//     count is always recoverable;
//   - every breaker transition that changed the live pool (quarantine
//     or restore, with its weight renormalization) is WAL-logged, so a
//     restored engine resumes with the same degraded switching
//     distribution it died with;
//   - restore rebuilds cumulative Stats, breaker states and the live
//     sampler exactly as snapshot + replay; only sub-verdict detail
//     (per-detector latency histograms, retry counters since the last
//     snapshot) is approximate, restored to the snapshot's values.
//
// Exactness comes from ckptMu: verdict commits and breaker transitions
// take it shared (increment counters + append WAL as one unit), the
// snapshot capture takes it exclusive (capture state + rotate WAL as
// one unit). An event is therefore in the snapshot or in the replayed
// WAL — never both, never neither.

// engineStateVersion guards the snapshot payload schema. Version 2
// added PoolEpoch for the epoch-versioned pool-swap protocol; version-1
// snapshots (written before swaps existed) still load, as epoch 0.
const engineStateVersion = 2

// EngineState is the engine's serializable state: everything Restore
// needs to resume a crashed monitor — cumulative counters, the breaker
// board, the pool-window clock — keyed to the pool it belongs to by
// Fingerprint.
type EngineState struct {
	Version     int    `json:"version"`
	Fingerprint uint64 `json:"fingerprint"`
	SavedUnix   int64  `json:"saved_unix"`
	// PoolEpoch is the serving pool generation at snapshot time
	// (version ≥ 2; 0 in version-1 snapshots). Together with
	// Fingerprint it names exactly which pool the restored engine must
	// serve; Config.ResolvePool materializes generations other than the
	// constructed one.
	PoolEpoch uint64 `json:"pool_epoch,omitempty"`

	// WindowClock is the pool-wide processed-window counter that drives
	// probe cooldowns.
	WindowClock uint64       `json:"window_clock"`
	Counters    CounterState `json:"counters"`
	Quarantines uint64       `json:"quarantines"`
	Restores    uint64       `json:"restores"`

	Breakers []BreakerSnapshot `json:"breakers"`
}

// CounterState mirrors the scalar counters of Stats.
type CounterState struct {
	Programs uint64 `json:"programs"`
	Shed     uint64 `json:"shed"`
	Failed   uint64 `json:"failed"`
	Windows  uint64 `json:"windows"`
	Flagged  uint64 `json:"flagged"`
	Degraded uint64 `json:"degraded"`
	Dropped  uint64 `json:"dropped"`
	Retries  uint64 `json:"retries"`
	Timeouts uint64 `json:"timeouts"`
	Panics   uint64 `json:"panics"`
}

// BreakerSnapshot is one detector's persisted breaker state.
type BreakerSnapshot struct {
	State       BreakerState `json:"state"`
	ConsecFails int          `json:"consec_fails"`
	OpenedAt    uint64       `json:"opened_at"`
	Calls       uint64       `json:"calls"`
	Failures    uint64       `json:"failures"`
	LatencyNs   int64        `json:"latency_ns"`
}

// walVerdict is the WAL payload for one completed program.
type walVerdict struct {
	Failed   bool `json:"failed,omitempty"`
	Malware  bool `json:"malware,omitempty"`
	Windows  int  `json:"windows"`
	Flagged  int  `json:"flagged"`
	Degraded int  `json:"degraded"`
	Dropped  int  `json:"dropped"`
}

// walBreaker is the WAL payload for one live-set transition.
type walBreaker struct {
	Detector int  `json:"detector"`
	Restore  bool `json:"restore"` // false = quarantine
}

// walPoolSwap is the WAL payload for one pool-generation swap: the
// epoch the new pool serves as, plus its fingerprint so replay can
// resolve (via Config.ResolvePool) exactly the pool that went live.
type walPoolSwap struct {
	Epoch       uint64 `json:"epoch"`
	Fingerprint uint64 `json:"fingerprint"`
}

// RestoreInfo summarizes what Engine.Restore recovered.
type RestoreInfo struct {
	// Gen is the snapshot generation restored (0 = WAL-only recovery
	// from a crash before the first snapshot).
	Gen uint64
	// Replayed is the number of WAL entries applied on top of the
	// snapshot.
	Replayed int
	// Fallbacks counts corrupt newer snapshot generations skipped.
	Fallbacks int
	// TornWAL reports a crash mid-append was detected (and cut).
	TornWAL bool
}

func (ri *RestoreInfo) String() string {
	return fmt.Sprintf("checkpoint generation %d, %d WAL entries replayed, %d corrupt generations skipped",
		ri.Gen, ri.Replayed, ri.Fallbacks)
}

// poolFingerprint identifies a trained pool + switching policy, so a
// checkpoint is never restored into an engine serving a different pool.
// It delegates to core.RHMD.Fingerprint, which covers the trained model
// parameters too — retrained generations with identical specs/probs/key
// must not collide, or swap recovery could restore the wrong pool.
func poolFingerprint(r *core.RHMD) uint64 { return r.Fingerprint() }

// SnapshotState captures the engine's durable state. Callers that need
// snapshot/WAL exactness hold ckptMu exclusively around it (Checkpoint
// does); bare calls get a point-in-time read that may interleave with
// in-flight verdicts.
func (e *Engine) SnapshotState() *EngineState {
	g := e.pool.Load()
	breakers, clock, quar, rest := g.health.exportState()
	return &EngineState{
		Version:     engineStateVersion,
		Fingerprint: poolFingerprint(g.rhmd),
		PoolEpoch:   g.epoch,
		SavedUnix:   time.Now().Unix(),
		WindowClock: clock,
		Counters: CounterState{
			Programs: e.ins.programs.Value(),
			Shed:     e.ins.shed.Value(),
			Failed:   e.ins.failed.Value(),
			Windows:  e.ins.windows.Value(),
			Flagged:  e.ins.flagged.Value(),
			Degraded: e.ins.degraded.Value(),
			Dropped:  e.ins.dropped.Value(),
			Retries:  e.ins.retries.Value(),
			Timeouts: e.ins.timeouts.Value(),
			Panics:   e.ins.panics.Value(),
		},
		Quarantines: quar,
		Restores:    rest,
		Breakers:    breakers,
	}
}

// Checkpoint flushes a snapshot generation now. It is a no-op without a
// configured store. Safe to call concurrently with traffic: verdict
// commits are excluded for the duration of the capture + WAL rotation.
// Each flush is its own root span trace (stage "checkpoint"), so a
// snapshot stall shows up on /traces next to the verdicts it delayed.
func (e *Engine) Checkpoint() (gen uint64, err error) {
	if e.ckpt == nil {
		return 0, nil
	}
	tr := e.spans.Start("checkpoint", span.StageCheckpoint)
	defer func() {
		if err != nil {
			e.ins.ckptFailures.Inc()
			tr.Flag(span.ReasonErrored)
			if r := tr.Root(); r != nil {
				r.Err = err.Error()
			}
		}
		tr.SetVerdict("checkpoint")
		tr.Finish()
	}()
	e.ckptMu.Lock()
	defer e.ckptMu.Unlock()
	payload, err := json.Marshal(e.SnapshotState())
	if err != nil {
		return 0, fmt.Errorf("monitor: encoding checkpoint: %w", err)
	}
	return e.ckpt.Save(payload)
}

// Restore rebuilds the engine from its checkpoint store: the newest
// valid snapshot generation plus the replayed WAL. Must be called
// before Start, on a freshly constructed engine. It returns (nil, nil)
// when the store holds no state — a fresh deployment.
func (e *Engine) Restore() (*RestoreInfo, error) {
	if e.ckpt == nil {
		return nil, fmt.Errorf("monitor: Restore needs a Checkpoint store in the engine config")
	}
	e.mu.Lock()
	started := e.started
	e.mu.Unlock()
	if started {
		return nil, fmt.Errorf("monitor: Restore must run before Start")
	}

	res, err := e.ckpt.Restore()
	if err != nil {
		if err == checkpoint.ErrNoCheckpoint {
			return nil, nil
		}
		return nil, err
	}

	if res.Snapshot != nil {
		var st EngineState
		if err := json.Unmarshal(res.Snapshot, &st); err != nil {
			return nil, fmt.Errorf("monitor: decoding checkpoint snapshot: %w", err)
		}
		if err := e.applySnapshot(&st); err != nil {
			return nil, err
		}
	}
	for _, entry := range res.Entries {
		if err := e.applyEntry(entry); err != nil {
			return nil, err
		}
	}
	e.pool.Load().health.republish()
	return &RestoreInfo{Gen: res.Gen, Replayed: len(res.Entries), Fallbacks: res.Fallbacks, TornWAL: res.TornWAL}, nil
}

// applySnapshot loads a decoded snapshot into the (zero-state) engine,
// first re-materializing the pool generation the snapshot belongs to
// when it is not the one the engine was constructed with.
func (e *Engine) applySnapshot(st *EngineState) error {
	if st.Version < 1 || st.Version > engineStateVersion {
		return fmt.Errorf("monitor: checkpoint state version %d (want 1..%d)", st.Version, engineStateVersion)
	}
	g := e.pool.Load()
	if fp := poolFingerprint(g.rhmd); st.Fingerprint != fp {
		// A later generation (or a foreign pool). With a ResolvePool
		// hook the engine reinstalls the checkpointed generation; without
		// one this stays the pre-swap wrong-pool hard error.
		if e.cfg.ResolvePool == nil {
			return fmt.Errorf("monitor: checkpoint belongs to a different pool (fingerprint %016x, engine %016x)",
				st.Fingerprint, fp)
		}
		r, err := e.cfg.ResolvePool(st.PoolEpoch, st.Fingerprint)
		if err != nil {
			return fmt.Errorf("monitor: resolving checkpointed pool generation %d (%016x): %w",
				st.PoolEpoch, st.Fingerprint, err)
		}
		if got := poolFingerprint(r); got != st.Fingerprint {
			return fmt.Errorf("monitor: ResolvePool returned fingerprint %016x for checkpointed %016x", got, st.Fingerprint)
		}
		if err := e.installGen(st.PoolEpoch, r); err != nil {
			return err
		}
		g = e.pool.Load()
	} else if st.PoolEpoch != g.epoch {
		// Same pool bytes at a different epoch (a rollback re-promoted
		// the constructed pool): keep the pool, adopt the epoch.
		if err := e.installGen(st.PoolEpoch, g.rhmd); err != nil {
			return err
		}
		g = e.pool.Load()
	}
	if len(st.Breakers) != g.rhmd.Size() {
		return fmt.Errorf("monitor: checkpoint has %d breakers for a pool of %d", len(st.Breakers), g.rhmd.Size())
	}
	c := st.Counters
	e.ins.programs.Add(c.Programs)
	e.ins.shed.Add(c.Shed)
	e.ins.failed.Add(c.Failed)
	e.ins.windows.Add(c.Windows)
	e.ins.flagged.Add(c.Flagged)
	e.ins.degraded.Add(c.Degraded)
	e.ins.dropped.Add(c.Dropped)
	e.ins.retries.Add(c.Retries)
	e.ins.timeouts.Add(c.Timeouts)
	e.ins.panics.Add(c.Panics)
	return g.health.restoreState(st.Breakers, st.WindowClock, st.Quarantines, st.Restores)
}

// applyEntry replays one WAL record on top of the snapshot state.
func (e *Engine) applyEntry(entry checkpoint.Entry) error {
	g := e.pool.Load()
	switch entry.Kind {
	case checkpoint.KindVerdict:
		var v walVerdict
		if err := json.Unmarshal(entry.Payload, &v); err != nil {
			return fmt.Errorf("monitor: decoding WAL verdict: %w", err)
		}
		if v.Failed {
			e.ins.failed.Inc()
		} else {
			e.ins.programs.Inc()
		}
		e.ins.windows.Add(uint64(v.Windows))
		e.ins.flagged.Add(uint64(v.Flagged))
		e.ins.degraded.Add(uint64(v.Degraded))
		e.ins.dropped.Add(uint64(v.Dropped))
		g.health.advanceClock(uint64(v.Windows + v.Dropped))
	case checkpoint.KindBreaker:
		var b walBreaker
		if err := json.Unmarshal(entry.Payload, &b); err != nil {
			return fmt.Errorf("monitor: decoding WAL breaker entry: %w", err)
		}
		if b.Detector < 0 || b.Detector >= g.rhmd.Size() {
			return fmt.Errorf("monitor: WAL breaker entry for detector %d of %d", b.Detector, g.rhmd.Size())
		}
		g.health.applyTransition(b.Detector, b.Restore)
	case checkpoint.KindPoolSwap:
		var ps walPoolSwap
		if err := json.Unmarshal(entry.Payload, &ps); err != nil {
			return fmt.Errorf("monitor: decoding WAL pool-swap entry: %w", err)
		}
		r := g.rhmd
		if ps.Fingerprint != poolFingerprint(r) {
			if e.cfg.ResolvePool == nil {
				return fmt.Errorf("monitor: WAL pool swap to unknown fingerprint %016x (epoch %d) and no ResolvePool configured",
					ps.Fingerprint, ps.Epoch)
			}
			var err error
			if r, err = e.cfg.ResolvePool(ps.Epoch, ps.Fingerprint); err != nil {
				return fmt.Errorf("monitor: resolving WAL pool swap to generation %d (%016x): %w",
					ps.Epoch, ps.Fingerprint, err)
			}
			if got := poolFingerprint(r); got != ps.Fingerprint {
				return fmt.Errorf("monitor: ResolvePool returned fingerprint %016x for WAL-logged %016x", got, ps.Fingerprint)
			}
		}
		// Replaying a swap mirrors live SwapPool semantics exactly:
		// fresh health board (breakers closed, window clock zero), so
		// later WAL entries act on the same state they did live.
		if err := e.installGen(ps.Epoch, r); err != nil {
			return err
		}
	default:
		// Unknown kinds are skipped, not fatal: a newer writer may log
		// event kinds an older reader does not know.
	}
	return nil
}

// commitVerdict applies a finished program's accounting and durably
// logs it, as one unit relative to snapshot capture. The WAL append
// runs first: under StrictDurability a verdict whose append failed is
// withheld (counted undurable, never delivered), so everything a
// consumer acks is provably recoverable; without it the engine keeps
// the pre-fleet behavior of delivering with a logged durability gap.
// Every window of the program lands in a bucket whether or not the
// program failed mid-trace; the program itself lands in processed,
// failed, or undurable. tr/ws are the verdict's trace and its open
// wal-fsync span (nil when untraced): a failed WAL append marks both,
// so losing a verdict's durability always leaves a kept trace behind.
func (e *Engine) commitVerdict(rep Report, tr *span.Trace, ws *span.Span) (durable bool) {
	e.ckptMu.RLock()
	defer e.ckptMu.RUnlock()
	if e.ckpt != nil {
		payload, err := json.Marshal(walVerdict{
			Failed:   rep.Err != nil,
			Malware:  rep.Malware,
			Windows:  rep.Windows,
			Flagged:  rep.Flagged,
			Degraded: rep.Degraded,
			Dropped:  rep.Dropped,
		})
		if err == nil {
			err = e.ckpt.Append(checkpoint.KindVerdict, payload)
		}
		if err != nil {
			// A failed append costs durability of this one verdict, not
			// the engine: surface it on the trace and keep serving.
			e.ins.ckptFailures.Inc()
			tr.Flag(span.ReasonErrored)
			if ws != nil {
				ws.Err = err.Error()
			}
			e.tracer.Emit(obs.Event{Kind: obs.EvCheckpointSave, Program: rep.Program, Detector: -1, Window: -1,
				Detail: fmt.Sprintf("WAL append failed: %v", err)})
			if e.cfg.StrictDurability {
				// Withheld: the counters below would be resurrected by a
				// restore the WAL knows nothing about, so the verdict is
				// accounted only as undurable.
				e.ins.undurable.Inc()
				return false
			}
		}
	}
	e.ins.windows.Add(uint64(rep.Windows))
	e.ins.flagged.Add(uint64(rep.Flagged))
	e.ins.degraded.Add(uint64(rep.Degraded))
	e.ins.dropped.Add(uint64(rep.Dropped))
	if rep.Err != nil {
		e.ins.failed.Inc()
	} else {
		e.ins.programs.Inc()
	}
	return true
}

// commitTransition runs the breaker state machine for one
// classification outcome and durably logs any live-set change, as one
// unit relative to snapshot capture. exemplarID joins the latency
// observation to its verdict trace (see healthBoard.report).
func (e *Engine) commitTransition(g *poolGen, idx int, ok bool, latency time.Duration, exemplarID string) {
	e.ckptMu.RLock()
	defer e.ckptMu.RUnlock()
	quarantined, restored := g.health.report(idx, ok, latency, exemplarID)
	if e.ckpt == nil || (!quarantined && !restored) {
		return
	}
	if g != e.pool.Load() {
		// The transition happened on a retiring generation — a swap
		// published mid-program. Its board is about to be discarded, and
		// the WAL already carries the swap entry that resets breaker
		// state on replay, so logging this transition would corrupt the
		// new generation's replayed board.
		return
	}
	payload, err := json.Marshal(walBreaker{Detector: idx, Restore: restored})
	if err == nil {
		err = e.ckpt.Append(checkpoint.KindBreaker, payload)
	}
	if err != nil {
		e.ins.ckptFailures.Inc()
		e.tracer.Emit(obs.Event{Kind: obs.EvCheckpointSave, Detector: idx, Window: -1,
			Detail: fmt.Sprintf("WAL append failed: %v", err)})
	}
}

// checkpointLoop periodically flushes snapshots until the engine
// drains or ctx is cancelled. The final snapshot is written by the
// drain path itself (see Start), so a graceful shutdown always ends on
// a fresh generation.
func (e *Engine) checkpointLoop(ctx context.Context, every time.Duration) {
	tick := time.NewTicker(every)
	defer tick.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-e.done:
			return
		case <-tick.C:
			if _, err := e.Checkpoint(); err != nil {
				e.tracer.Emit(obs.Event{Kind: obs.EvCheckpointSave, Detector: -1, Window: -1,
					Detail: fmt.Sprintf("periodic save failed: %v", err)})
			}
		}
	}
}
