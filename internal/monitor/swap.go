package monitor

import (
	"encoding/json"
	"fmt"

	"rhmd/internal/checkpoint"
	"rhmd/internal/core"
	"rhmd/internal/obs"
	"rhmd/internal/obs/span"
)

// Zero-downtime pool swaps. The drift guard (internal/driftguard)
// retrains the detector pool while the engine serves; SwapPool commits
// the retrained pool as the next epoch-versioned generation:
//
//   - in-flight verdicts finish on the generation they started on
//     (process loads the poolGen pointer once per program);
//   - new submissions draw from the new generation's LiveSampler the
//     moment the pointer is published;
//   - the swap is WAL-logged (KindPoolSwap: epoch + pool fingerprint)
//     before it is published, under the same shared ckptMu hold, so a
//     snapshot capture can never land between the log and the publish —
//     after a crash, Restore rebuilds exactly the generation that was
//     serving (via Config.ResolvePool), never a torn hybrid;
//   - each generation carries a fresh health board: breakers open
//     against the old pool say nothing about the retrained one.

// poolGen is one serving generation of the detector pool: the pool
// itself, its health board (breakers + live sampler), and the epoch
// SwapPool assigned. Generations are immutable once published; the
// engine's atomic pointer is the only mutable cell.
type poolGen struct {
	epoch  uint64
	rhmd   *core.RHMD
	health *healthBoard
}

// PoolEpoch returns the serving pool generation (0 until the first
// SwapPool; increments per swap, rollbacks included).
func (e *Engine) PoolEpoch() uint64 { return e.pool.Load().epoch }

// PoolFingerprint returns the serving pool's identity hash — the value
// checkpoints and WAL swap entries carry.
func (e *Engine) PoolFingerprint() uint64 { return poolFingerprint(e.pool.Load().rhmd) }

// Pool returns the serving pool. Retrainers clone its specs, switching
// policy and key; treat it as read-only (RHMD is immutable by contract).
func (e *Engine) Pool() *core.RHMD { return e.pool.Load().rhmd }

// validateSwap checks a candidate pool against the serving one. The
// per-detector instruments (latency/weight/state/draw children) are
// position- and spec-bound at engine construction, so a swap must keep
// the pool shape: same size, same spec at every position. Retrained
// pools satisfy this by construction — only the trained parameters and
// thresholds change.
func validateSwap(old, r *core.RHMD) error {
	if r == nil || r.Size() == 0 {
		return fmt.Errorf("monitor: SwapPool needs a non-empty RHMD pool")
	}
	if r.Size() != old.Size() {
		return fmt.Errorf("monitor: SwapPool pool has %d detectors, serving pool %d (per-detector instruments are position-bound)",
			r.Size(), old.Size())
	}
	for i, d := range r.Detectors {
		if d.Spec != old.Detectors[i].Spec {
			return fmt.Errorf("monitor: SwapPool detector %d has spec %s, serving pool %s (specs are fixed across swaps)",
				i, d.Spec, old.Detectors[i].Spec)
		}
	}
	return nil
}

// SwapPool commits r as the next serving pool generation with zero
// downtime and returns the epoch it serves as. It is safe to call
// concurrently with Submit/Close/Checkpoint; concurrent swaps
// serialize. On error the old generation keeps serving untouched — in
// particular, a failed WAL append aborts the swap entirely, so the
// durable history never diverges from what actually served.
func (e *Engine) SwapPool(r *core.RHMD) (epoch uint64, err error) {
	e.swapMu.Lock()
	defer e.swapMu.Unlock()
	old := e.pool.Load()
	if err := validateSwap(old.rhmd, r); err != nil {
		return 0, err
	}
	epoch = old.epoch + 1
	fp := poolFingerprint(r)

	// Each swap is its own root trace (stage "pool-swap"), flagged so
	// the tail sampler always keeps it: swaps are rare and are the first
	// thing to look at when verdict quality shifts.
	tr := e.spans.Start("pool-swap", span.StagePoolSwap)
	defer func() {
		if err != nil {
			tr.Flag(span.ReasonErrored)
			if root := tr.Root(); root != nil {
				root.Err = err.Error()
			}
		}
		tr.Flag(span.ReasonBreaker)
		tr.SetVerdict("pool-swap")
		tr.Finish()
	}()

	nh := newHealthBoard(r, e.cfg.FailureThreshold, uint64(e.cfg.ProbeAfter))

	// Log, then publish, under one shared ckptMu hold. Checkpoint takes
	// ckptMu exclusively around capture + WAL rotation, so it can never
	// observe the gap between the two: a snapshot either ran before (the
	// swap entry lands in the fresh WAL and replays) or after (the
	// snapshot itself records the new epoch + fingerprint). Either way a
	// restore lands on exactly the old or the new generation.
	e.ckptMu.RLock()
	if e.ckpt != nil {
		payload, jerr := json.Marshal(walPoolSwap{Epoch: epoch, Fingerprint: fp})
		if jerr != nil {
			e.ckptMu.RUnlock()
			e.ins.ckptFailures.Inc()
			return 0, fmt.Errorf("monitor: WAL-logging pool swap: %w", jerr)
		}
		if aerr := e.ckpt.Append(checkpoint.KindPoolSwap, payload); aerr != nil {
			e.ckptMu.RUnlock()
			e.ins.ckptFailures.Inc()
			return 0, fmt.Errorf("monitor: WAL-logging pool swap: %w", aerr)
		}
	}
	nh.attach(e.ins, e.tracer)
	e.pool.Store(&poolGen{epoch: epoch, rhmd: r, health: nh})
	e.ckptMu.RUnlock()

	// Detach the outgoing generation from the shared gauges: in-flight
	// verdicts against it finish harmlessly, but can no longer publish
	// retired breaker state over the serving generation's.
	old.health.retire()

	e.ins.poolSwaps.Inc()
	e.ins.poolGeneration.Set(float64(epoch))
	e.tracer.Emit(obs.Event{Kind: obs.EvPoolSwap, Detector: -1, Window: -1,
		Detail: fmt.Sprintf("epoch %d live, fingerprint %016x", epoch, fp)})
	return epoch, nil
}

// installGen replaces the serving generation during Restore replay,
// mirroring live SwapPool semantics: fresh health board (breakers
// closed, window clock zero), gauges republished. Restore runs before
// Start on a freshly constructed engine, single-threaded, so no ckptMu
// or WAL logging is involved.
func (e *Engine) installGen(epoch uint64, r *core.RHMD) error {
	old := e.pool.Load()
	if err := validateSwap(old.rhmd, r); err != nil {
		return err
	}
	nh := newHealthBoard(r, e.cfg.FailureThreshold, uint64(e.cfg.ProbeAfter))
	nh.attach(e.ins, e.tracer)
	e.pool.Store(&poolGen{epoch: epoch, rhmd: r, health: nh})
	old.health.retire()
	e.ins.poolGeneration.Set(float64(epoch))
	return nil
}
