package monitor

import (
	"context"
	"testing"
	"time"

	"rhmd/internal/core"
	"rhmd/internal/dataset"
	"rhmd/internal/features"
	"rhmd/internal/hmd"
	"rhmd/internal/prog"
)

// fixture: a small corpus and the paper's six-detector pool (three
// feature kinds × two collection periods).
type fixture struct {
	programs []*prog.Program
	traceLen int
	pool     []*hmd.Detector
}

var fx *fixture

func getFixture(t testing.TB) *fixture {
	t.Helper()
	if fx != nil {
		return fx
	}
	cfg := dataset.Config{BenignPerFamily: 8, MalwarePerFamily: 12, TraceLen: 60_000, Seed: 11}
	c, err := dataset.Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	groups, err := c.Split([]float64{0.7, 0.3}, 3)
	if err != nil {
		t.Fatal(err)
	}
	periods := []int{1000, 2000}
	data := map[int]*dataset.MultiWindowData{}
	for _, p := range periods {
		mw, err := dataset.ExtractWindows(groups[0], p, cfg.TraceLen)
		if err != nil {
			t.Fatal(err)
		}
		data[p] = mw
	}
	specs := core.PoolSpecs(features.AllKinds(), periods, "lr")
	pool, err := core.TrainPool(specs, data, 1)
	if err != nil {
		t.Fatal(err)
	}
	fx = &fixture{programs: groups[1], traceLen: cfg.TraceLen, pool: pool}
	return fx
}

// runStream submits every program, closes, and collects reports by name.
func runStream(t *testing.T, e *Engine, programs []*prog.Program) map[string]Report {
	t.Helper()
	e.Start(context.Background())
	go func() {
		for _, p := range programs {
			if !e.Submit(p) {
				t.Errorf("submit of %q shed with roomy queue", p.Name)
			}
		}
		e.Close()
	}()
	out := map[string]Report{}
	for rep := range e.Results() {
		out[rep.Program] = rep
	}
	return out
}

// TestEngineMatchesBatchDecisions proves the serving layer is the same
// detector as the batch path: with no faults, a healthy engine's window
// schedule and decisions are exactly core.RHMD.DecideTrace's.
func TestEngineMatchesBatchDecisions(t *testing.T) {
	f := getFixture(t)
	r, err := core.New(f.pool, 0xFEED)
	if err != nil {
		t.Fatal(err)
	}
	// A generous deadline so a loaded CI box cannot fake a stall.
	e, err := New(r, Config{Workers: 4, QueueDepth: len(f.programs), TraceLen: f.traceLen,
		WindowDeadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	reports := runStream(t, e, f.programs)
	if len(reports) != len(f.programs) {
		t.Fatalf("%d reports for %d programs", len(reports), len(f.programs))
	}
	for _, p := range f.programs {
		rep := reports[p.Name]
		if rep.Err != nil {
			t.Fatalf("%s: %v", p.Name, rep.Err)
		}
		dec, err := r.DecideTrace(p, f.traceLen)
		if err != nil {
			t.Fatal(err)
		}
		flagged := 0
		for _, d := range dec {
			flagged += d.Decision
		}
		if rep.Windows != len(dec) || rep.Flagged != flagged {
			t.Fatalf("%s: engine %d/%d vs batch %d/%d windows flagged",
				p.Name, rep.Flagged, rep.Windows, flagged, len(dec))
		}
		if rep.Degraded != 0 || rep.Dropped != 0 {
			t.Fatalf("%s: healthy pool degraded=%d dropped=%d", p.Name, rep.Degraded, rep.Dropped)
		}
	}
	st := e.Stats()
	if st.Quarantines != 0 || st.Restores != 0 || st.Panics != 0 {
		t.Fatalf("healthy run recorded fault handling: %v", st)
	}
	if st.LivePool() != 6 {
		t.Fatalf("live pool %d", st.LivePool())
	}
}

// acceptanceInjector is the ISSUE's fault scenario: detector 1 fails
// permanently with transient errors; detector 4 fails with a mix of
// panics and stalls for its first probeRecover windows, then recovers.
func acceptanceInjector(deadline time.Duration, recoverAfter uint64) *Injector {
	in := NewInjector(77)
	in.SetProfile(1, Profile{ErrorRate: 1})
	in.SetProfile(4, Profile{PanicRate: 0.5, LatencyRate: 0.5, Latency: 8 * deadline, Until: recoverAfter})
	return in
}

// TestGracefulDegradationUnderFaults is the PR's acceptance scenario:
// a six-detector pool with two members forced to fail (error, panic and
// latency modes), streamed over a whole corpus. The engine must account
// for every window, quarantine exactly the faulty detectors,
// renormalize switching weights over the survivors, and restore the
// recovered detector through half-open probing — deterministically
// under a fixed seed.
func TestGracefulDegradationUnderFaults(t *testing.T) {
	f := getFixture(t)
	run := func() (map[string]Report, Stats) {
		r, err := core.New(f.pool, 0xFEED)
		if err != nil {
			t.Fatal(err)
		}
		deadline := 30 * time.Millisecond
		e, err := New(r, Config{
			// One worker makes the full event order — and therefore
			// quarantine/probe timing — deterministic under the fixed
			// seed; multi-worker liveness is covered elsewhere.
			Workers:        1,
			QueueDepth:     len(f.programs),
			TraceLen:       f.traceLen,
			WindowDeadline: deadline,
			ProbeAfter:     40,
			Injector:       acceptanceInjector(deadline, 4),
		})
		if err != nil {
			t.Fatal(err)
		}
		return runStream(t, e, f.programs), e.Stats()
	}
	reports, st := run()

	// Zero unaccounted windows: every program classified end-to-end,
	// every window either classified or explicitly dropped — and with
	// four healthy detectors, nothing should need dropping.
	if len(reports) != len(f.programs) || st.ProgramsFailed != 0 || st.ProgramsShed != 0 {
		t.Fatalf("programs unaccounted: %d reports, stats %+v", len(reports), st)
	}
	var wins, flagged, degraded, dropped uint64
	for name, rep := range reports {
		if rep.Err != nil {
			t.Fatalf("%s: %v", name, rep.Err)
		}
		if rep.Windows == 0 {
			t.Fatalf("%s: no windows classified", name)
		}
		wins += uint64(rep.Windows)
		flagged += uint64(rep.Flagged)
		degraded += uint64(rep.Degraded)
		dropped += uint64(rep.Dropped)
	}
	if wins != st.Windows || flagged != st.Flagged || degraded != st.Degraded || dropped != st.DroppedWindows {
		t.Fatalf("report totals (%d,%d,%d,%d) disagree with engine stats %+v",
			wins, flagged, degraded, dropped, st)
	}
	if dropped != 0 {
		t.Fatalf("%d windows dropped despite four healthy detectors", dropped)
	}
	if degraded == 0 {
		t.Fatal("no degraded windows: faulty detectors were never scheduled")
	}

	// Quarantines exactly the faulty detectors; weights renormalized.
	if st.Quarantines != 2 {
		t.Fatalf("quarantines %d, want exactly 2", st.Quarantines)
	}
	for i, d := range st.Detectors {
		switch i {
		case 1:
			if d.State != Open || d.Weight != 0 {
				t.Fatalf("faulty detector 1 state=%v weight=%v", d.State, d.Weight)
			}
		default:
			if d.State != Closed {
				t.Fatalf("healthy detector %d state=%v", i, d.State)
			}
			// Five live detectors after detector 4's restore: 1/5 each.
			if got := d.Weight; got < 0.199 || got > 0.201 {
				t.Fatalf("detector %d weight %.4f, want 0.2", i, got)
			}
		}
	}

	// Detector 4 recovered and was restored by a half-open probe.
	if st.Restores != 1 {
		t.Fatalf("restores %d, want 1", st.Restores)
	}
	if st.Detectors[4].State != Closed {
		t.Fatalf("recovered detector state %v", st.Detectors[4].State)
	}

	// The fault modes all actually fired.
	if st.Retries == 0 || st.Timeouts == 0 || st.Panics == 0 {
		t.Fatalf("fault modes missing from stats: %+v", st)
	}

	// Deterministic under the fixed seed: a second run reproduces every
	// report and every health outcome.
	reports2, st2 := run()
	for name, rep := range reports {
		if reports2[name] != rep {
			t.Fatalf("%s: run 1 %+v vs run 2 %+v", name, rep, reports2[name])
		}
	}
	if st2.Windows != st.Windows || st2.Flagged != st.Flagged ||
		st2.Degraded != st.Degraded || st2.Quarantines != st.Quarantines ||
		st2.Restores != st.Restores {
		t.Fatalf("stats not reproducible:\n%v\nvs\n%v", st, st2)
	}
}

// TestCorruptVectorFaultIsCaught exercises the fourth fault mode: a
// corrupted feature vector must surface as a detector failure (and
// eventually a quarantine), never as a silent bogus decision.
func TestCorruptVectorFaultIsCaught(t *testing.T) {
	f := getFixture(t)
	r, err := core.New(f.pool, 0xFEED)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(5)
	in.SetProfile(2, Profile{CorruptRate: 1})
	e, err := New(r, Config{Workers: 1, QueueDepth: 8, TraceLen: f.traceLen, Injector: in})
	if err != nil {
		t.Fatal(err)
	}
	reports := runStream(t, e, f.programs[:6])
	for name, rep := range reports {
		if rep.Err != nil {
			t.Fatalf("%s: %v", name, rep.Err)
		}
		if rep.Dropped != 0 {
			t.Fatalf("%s: dropped %d windows", name, rep.Dropped)
		}
	}
	st := e.Stats()
	if st.Detectors[2].State != Open {
		t.Fatalf("corrupting detector not quarantined: %v", st.Detectors[2].State)
	}
	if st.Detectors[2].Failures == 0 {
		t.Fatal("corrupt faults not recorded as failures")
	}
}

// TestLoadShedding: a full queue rejects work explicitly and counts it.
func TestLoadShedding(t *testing.T) {
	f := getFixture(t)
	r, err := core.New(f.pool, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(r, Config{Workers: 1, QueueDepth: 2, TraceLen: f.traceLen})
	if err != nil {
		t.Fatal(err)
	}
	// Workers not started: the queue fills at its bound and the rest of
	// the burst is shed.
	accepted := 0
	for _, p := range f.programs {
		if e.Submit(p) {
			accepted++
		}
	}
	if accepted != 2 {
		t.Fatalf("accepted %d with queue depth 2", accepted)
	}
	st := e.Stats()
	if got := int(st.ProgramsShed); got != len(f.programs)-2 {
		t.Fatalf("shed %d, want %d", got, len(f.programs)-2)
	}
	e.Start(context.Background())
	e.Close()
	n := 0
	for range e.Results() {
		n++
	}
	if n != 2 {
		t.Fatalf("drained %d reports", n)
	}
	// A closed engine shreds, never blocks or panics.
	if e.Submit(f.programs[0]) {
		t.Fatal("submit after close accepted")
	}
}

// TestCancellationStopsPromptly: cancelling the context closes Results
// without processing the whole backlog.
func TestCancellationStopsPromptly(t *testing.T) {
	f := getFixture(t)
	r, err := core.New(f.pool, 1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(r, Config{Workers: 2, QueueDepth: len(f.programs), TraceLen: f.traceLen})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	e.Start(ctx)
	for _, p := range f.programs {
		e.Submit(p)
	}
	<-e.Results() // at least one program made it through
	cancel()
	done := make(chan struct{})
	go func() {
		for range e.Results() {
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("engine did not stop after cancellation")
	}
}

// TestTotalPoolLossIsAccounted: when every detector faults permanently,
// the engine keeps running and every window lands in the dropped
// bucket — degraded to uselessness, but never wedged and never silent.
func TestTotalPoolLossIsAccounted(t *testing.T) {
	f := getFixture(t)
	r, err := core.New(f.pool, 2)
	if err != nil {
		t.Fatal(err)
	}
	in := NewInjector(1)
	in.SetDefault(Profile{ErrorRate: 1})
	e, err := New(r, Config{
		Workers:    2,
		QueueDepth: 8,
		TraceLen:   f.traceLen,
		ProbeAfter: 1 << 30, // no probes: the pool stays dead
		Injector:   in,
	})
	if err != nil {
		t.Fatal(err)
	}
	reports := runStream(t, e, f.programs[:4])
	st := e.Stats()
	if st.Quarantines != 6 {
		t.Fatalf("quarantines %d, want all 6", st.Quarantines)
	}
	if st.LivePool() != 0 {
		t.Fatalf("live pool %d", st.LivePool())
	}
	var wins, dropped int
	for _, rep := range reports {
		if rep.Err != nil {
			t.Fatalf("%s: %v", rep.Program, rep.Err)
		}
		if rep.Malware {
			t.Fatalf("%s: verdict from a dead pool", rep.Program)
		}
		wins += rep.Windows
		dropped += rep.Dropped
	}
	if uint64(wins) != st.Windows || uint64(dropped) != st.DroppedWindows {
		t.Fatal("window accounting diverged from stats")
	}
	if dropped == 0 {
		t.Fatal("dead pool dropped nothing")
	}
}
