// Package monitor is the online serving layer for RHMD: a concurrent
// engine that streams programs through a randomized detector pool with
// production-grade fault handling. It is the deployment story of the
// paper's §7 — an always-on hardware monitor classifying every running
// program — hardened for the failure modes a real deployment sees:
//
//   - bounded submission queues with explicit load shedding (a saturated
//     monitor drops and counts work, it never blocks the host or loses
//     windows silently);
//   - per-window classification deadlines and retry-with-backoff for
//     transient faults, with panic recovery so one poisoned trace or a
//     crashing base detector cannot take the engine down;
//   - per-detector consecutive-failure circuit breakers with graceful
//     pool degradation: a faulting detector is quarantined and the
//     switching distribution renormalized over the survivors. Per §7 the
//     RHMD's accuracy is the average of its live base pool, so a
//     degraded pool keeps classifying at the survivors' average accuracy
//     instead of failing closed;
//   - half-open probing that routes a single window back to a
//     quarantined detector after a cooldown, restoring it (and its
//     switching weight) once it answers correctly;
//   - a pluggable fault-injection harness (FaultInjector) so the
//     degradation behaviour is provable in tests.
package monitor

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rhmd/internal/checkpoint"
	"rhmd/internal/core"
	"rhmd/internal/obs"
	"rhmd/internal/obs/span"
	"rhmd/internal/prog"
)

// Config tunes the engine. The zero value of every field selects a
// sensible default.
type Config struct {
	// Workers is the number of concurrent classification workers
	// (default 4).
	Workers int
	// QueueDepth bounds the submission queue; a full queue sheds load
	// (default 2×Workers).
	QueueDepth int
	// TraceLen is the committed-instruction budget per monitored program
	// (default 80_000).
	TraceLen int
	// WindowDeadline bounds one classification attempt; a stalled
	// detector counts as a fault (default 25ms).
	WindowDeadline time.Duration
	// MaxRetries is the number of re-attempts after a failed
	// classification (default 2, i.e. three attempts total; negative
	// disables retries).
	MaxRetries int
	// RetryBackoff is the base backoff before the first retry, doubling
	// per attempt with deterministic equal-jitter (the actual wait for
	// attempt k is uniform in [b/2, b) for b = RetryBackoff·2^(k-1),
	// derived from the attempt's fault context so reruns reproduce the
	// same schedule). Default 500µs.
	RetryBackoff time.Duration
	// RetryBackoffMax caps the exponential backoff (default
	// 32×RetryBackoff).
	RetryBackoffMax time.Duration
	// Sleep is the injected clock seam the retry backoff waits through
	// (nil = a real timer honoring ctx). Tests substitute a recording
	// fake to assert the backoff schedule without waiting it out.
	Sleep func(ctx context.Context, d time.Duration) error
	// FailureThreshold is the consecutive-failure count that opens a
	// detector's breaker (default 3).
	FailureThreshold int
	// ProbeAfter is the quarantine cooldown, measured in pool-wide
	// processed windows, before a half-open probe (default 64). Counting
	// windows instead of wall-clock keeps tests deterministic.
	ProbeAfter int
	// Injector, when non-nil, injects faults into classification calls.
	Injector FaultInjector
	// Metrics is the observability registry the engine's instruments
	// register in (nil = a fresh private registry; reachable either way
	// via Engine.Registry). One engine per registry: two engines sharing
	// a registry would share — and double-count — the same instruments.
	Metrics *obs.Registry
	// Tracer, when non-nil, receives structured lifecycle events
	// (submit → extract → window → verdict, plus fault and breaker
	// events). Nil disables tracing at zero cost.
	Tracer *obs.Tracer
	// Spans, when non-nil, records a per-verdict span tree for every
	// submission — enqueue, queue wait, worker pickup, feature
	// extraction, each switching draw (detector + renormalized weight),
	// each window's classification, the vote, and the WAL fsync — and
	// tail-samples which trees to keep (see internal/obs/span). Nil
	// disables verdict tracing; every span call is nil-safe so the hot
	// path carries no flag checks.
	Spans *span.Recorder
	// Exemplars attaches the verdict trace ID to per-detector latency
	// observations as OpenMetrics exemplars. Requires Spans; only the
	// OpenMetrics exposition renders them, so 0.0.4 scrapes are
	// byte-identical either way.
	Exemplars bool
	// Checkpoint, when non-nil, makes the engine durable: verdicts and
	// breaker transitions are write-ahead-logged as they happen,
	// snapshots are flushed every CheckpointEvery and once more on
	// drain, and a crashed engine resumes via Restore. One engine per
	// store.
	Checkpoint *checkpoint.Store
	// CheckpointEvery is the periodic snapshot interval (default 2s;
	// ignored without a Checkpoint store).
	CheckpointEvery time.Duration
	// StrictDurability withholds any verdict whose WAL append failed:
	// the report is counted (rhmd_monitor_programs_total{outcome=
	// "undurable"}) but never delivered, so everything a consumer acks
	// is recoverable. Fleet shards run strict so a restarted shard can
	// prove zero acked-verdict loss; the default (false) keeps the
	// single-engine behavior of delivering with a logged durability
	// gap.
	StrictDurability bool
	// OnWorkerCrash, when non-nil, is called each time a worker
	// goroutine dies to a panic that escaped per-program recovery (for
	// example FaultWorkerCrash). The engine absorbs the crash — the
	// remaining workers keep serving — but never replaces the worker;
	// a fleet supervisor uses the callback as its shard-death signal.
	// Called from the dying worker goroutine; must not block.
	OnWorkerCrash func(err error)
	// ResolvePool, when non-nil, lets Restore rebuild pool generations
	// other than the one the engine was constructed with: given the
	// epoch and fingerprint a checkpointed swap recorded, it returns the
	// matching trained pool (typically from a driftguard.Archive). With
	// a nil ResolvePool a checkpoint whose fingerprint does not match
	// the constructed pool is a hard error, the pre-swap behavior.
	ResolvePool func(epoch, fingerprint uint64) (*core.RHMD, error)
}

func (c *Config) fill() {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2 * c.Workers
	}
	if c.TraceLen <= 0 {
		c.TraceLen = 80_000
	}
	if c.WindowDeadline <= 0 {
		c.WindowDeadline = 25 * time.Millisecond
	}
	if c.MaxRetries < 0 {
		c.MaxRetries = 0
	} else if c.MaxRetries == 0 {
		c.MaxRetries = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = 500 * time.Microsecond
	}
	if c.RetryBackoffMax <= 0 {
		c.RetryBackoffMax = 32 * c.RetryBackoff
	}
	if c.Sleep == nil {
		c.Sleep = sleepCtx
	}
	if c.FailureThreshold <= 0 {
		c.FailureThreshold = 3
	}
	if c.ProbeAfter <= 0 {
		c.ProbeAfter = 64
	}
	if c.CheckpointEvery <= 0 {
		c.CheckpointEvery = 2 * time.Second
	}
}

// sleepCtx is the default Config.Sleep: a real timer that aborts on
// context cancellation.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Report is the engine's verdict for one monitored program.
type Report struct {
	Program string
	Label   prog.Label
	// Malware is the majority-rule verdict over classified windows.
	Malware bool
	// Windows/Flagged/Degraded/Dropped account for every window of the
	// program's trace: Windows classified (Flagged malware, Degraded via
	// a fallback detector), Dropped unclassifiable (no live detector).
	Windows  int
	Flagged  int
	Degraded int
	Dropped  int
	// Err is set when the program could not be traced at all; the other
	// fields are zero in that case.
	Err error
	// TraceID is the verdict's span-trace identifier when the tail
	// sampler kept the trace (query it on /traces); empty when the
	// trace was dropped or verdict tracing is disabled.
	TraceID string
	// Shard and ShardGen identify which fleet shard (and which life of
	// it — generations count restarts) produced this verdict. Both are
	// zero for a bare single engine; internal/fleet stamps them as it
	// merges shard result streams.
	Shard    int
	ShardGen uint64
	// PoolEpoch is the detector-pool generation this verdict was
	// classified by (0 until the first SwapPool). In-flight programs
	// finish on the generation they started on, so after a swap the
	// epoch tells canary evaluation — and offline analysis — exactly
	// which pool produced each verdict.
	PoolEpoch uint64
}

// submission carries one queued program together with its verdict
// trace. The trace is single-owner: the submitter records the enqueue,
// the channel send is the happens-before handoff, and the worker
// records everything after pickup — no locking on the trace.
type submission struct {
	p *prog.Program
	// tr is nil when verdict tracing is disabled; wait is the open
	// queue-wait span the worker closes at pickup.
	tr   *span.Trace
	wait *span.Span
	// ts is the submit instant, the start of the end-to-end verdict
	// latency histogram (rhmd_monitor_verdict_latency_seconds).
	ts time.Time
}

// Engine streams programs through an RHMD pool. Construct with New,
// start workers with Start, feed with Submit, consume Results, and
// Close to drain.
type Engine struct {
	cfg Config

	// pool is the serving generation: the detector pool, its health
	// board, and the swap epoch. Hot-path readers load it exactly once
	// per program, so an in-flight verdict finishes on the generation it
	// started on while SwapPool publishes the next one atomically (see
	// swap.go). swapMu serializes swaps.
	pool   atomic.Pointer[poolGen]
	swapMu sync.Mutex

	queue   chan submission
	results chan Report
	wg      sync.WaitGroup
	reg     *obs.Registry
	ins     *instruments
	tracer  *obs.Tracer
	spans   *span.Recorder

	// ckpt is the durability store (nil = volatile engine). ckptMu
	// orders verdict/transition commits (shared) against snapshot
	// capture + WAL rotation (exclusive); done ends the periodic
	// checkpoint loop when the engine drains.
	ckpt   *checkpoint.Store
	ckptMu sync.RWMutex
	done   chan struct{}

	// closeMu orders queue sends (shared) against closing the queue
	// channel (exclusive), so Submit is safe to race with Close — a
	// fleet supervisor tears engines down underneath live submitters.
	// Both sides are non-blocking (select-default send, close).
	closeMu sync.RWMutex
	closed  atomic.Bool

	// progress ticks at least once per scheduled window, through both
	// the extraction and classification phases (see Progress).
	progress atomic.Uint64

	mu      sync.Mutex
	started bool
}

// New validates the configuration and builds an engine around a trained
// pool.
func New(r *core.RHMD, cfg Config) (*Engine, error) {
	if r == nil || r.Size() == 0 {
		return nil, fmt.Errorf("monitor: engine needs a non-empty RHMD pool")
	}
	cfg.fill()
	reg := cfg.Metrics
	if reg == nil {
		reg = obs.NewRegistry()
	}
	e := &Engine{
		cfg:     cfg,
		queue:   make(chan submission, cfg.QueueDepth),
		results: make(chan Report, cfg.QueueDepth),
		reg:     reg,
		ins:     newInstruments(reg, r),
		tracer:  cfg.Tracer,
		spans:   cfg.Spans,
		ckpt:    cfg.Checkpoint,
		done:    make(chan struct{}),
	}
	// Surface the event ring's overwrite drops as a scrapeable counter
	// alongside the engine's own instruments (nil-safe no-op).
	e.tracer.Instrument(reg)
	g := &poolGen{
		rhmd:   r,
		health: newHealthBoard(r, cfg.FailureThreshold, uint64(cfg.ProbeAfter)),
	}
	g.health.attach(e.ins, e.tracer)
	e.pool.Store(g)
	if e.ckpt != nil {
		e.ckpt.Instrument(reg, cfg.Tracer)
	}
	return e, nil
}

// Registry returns the engine's observability registry — mount it on an
// obs.NewMux to expose /metrics for this engine.
func (e *Engine) Registry() *obs.Registry { return e.reg }

// Start launches the worker pool. Cancelling ctx stops workers promptly
// (in-flight programs finish their current window attempt and are
// reported with ctx's error). Start is idempotent.
func (e *Engine) Start(ctx context.Context) {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.started {
		return
	}
	e.started = true
	e.ins.workersLive.Set(float64(e.cfg.Workers))
	for i := 0; i < e.cfg.Workers; i++ {
		e.wg.Add(1)
		go e.worker(ctx)
	}
	if e.ckpt != nil {
		go e.checkpointLoop(ctx, e.cfg.CheckpointEvery)
	}
	go func() {
		e.wg.Wait()
		// Flush a final generation after the last worker drains, so a
		// graceful shutdown restores to the exact terminal state; only
		// then is the result stream closed, making "Results closed" ⇒
		// "final checkpoint durable" for consumers.
		if e.ckpt != nil {
			if _, err := e.Checkpoint(); err != nil {
				e.tracer.Emit(obs.Event{Kind: obs.EvCheckpointSave, Detector: -1, Window: -1,
					Detail: fmt.Sprintf("final save failed: %v", err)})
			}
		}
		close(e.done)
		close(e.results)
	}()
}

// Submit offers a program to the engine. It returns false — and counts
// the program as shed — when the queue is full (backpressure) or the
// engine is closed. Shedding is explicit by design: an overloaded
// monitor must fail visibly, not stall the host.
func (e *Engine) Submit(p *prog.Program) bool {
	tr := e.spans.Start(p.Name, span.StageVerdict)
	// The closed check and the queue send form one unit under closeMu:
	// Close cannot close the channel between them.
	e.closeMu.RLock()
	defer e.closeMu.RUnlock()
	if e.closed.Load() {
		e.ins.shed.Inc()
		e.tracer.Emit(obs.Event{Kind: obs.EvShed, Program: p.Name, Detector: -1, Window: -1, Detail: "engine closed"})
		e.finishShed(tr, "engine closed")
		return false
	}
	enq := tr.StartSpan(span.StageEnqueue, nil)
	// The queue-wait span opens before the send so its start is the
	// enqueue instant; the worker closes it at pickup.
	wait := tr.StartSpan(span.StageQueueWait, nil)
	// The enqueue span must close BEFORE the send: a successful send
	// hands trace ownership to the worker, which may record its spans
	// and Finish (recycling the trace) concurrently with anything the
	// submitter does afterwards. The send is non-blocking, so ending
	// here loses nothing of the enqueue step's duration.
	tr.EndSpan(enq)
	select {
	case e.queue <- submission{p: p, tr: tr, wait: wait, ts: time.Now()}:
		e.ins.queueDepth.Inc()
		e.tracer.Emit(obs.Event{Kind: obs.EvSubmit, Program: p.Name, Detector: -1, Window: -1})
		return true
	default:
		tr.EndSpan(wait)
		e.ins.shed.Inc()
		e.tracer.Emit(obs.Event{Kind: obs.EvShed, Program: p.Name, Detector: -1, Window: -1, Detail: "queue full"})
		e.finishShed(tr, "queue full")
		return false
	}
}

// finishShed terminates a shed submission's trace: a shed is always a
// keep-worthy tail event (it is the engine failing visibly), so the
// trace is flagged and finished on the spot.
func (e *Engine) finishShed(tr *span.Trace, why string) {
	if tr == nil {
		return
	}
	if r := tr.Root(); r != nil {
		r.Err = why
	}
	tr.Flag(span.ReasonShed)
	tr.SetVerdict("shed")
	tr.Finish()
}

// Results returns the report stream. It is closed after Close (or
// context cancellation) once all workers have drained.
func (e *Engine) Results() <-chan Report { return e.results }

// Close stops accepting submissions and lets workers drain the queue.
// It does not wait; range over Results to observe completion. Close is
// idempotent and safe to race with Submit.
func (e *Engine) Close() {
	if e.closed.Swap(true) {
		return
	}
	// Exclude in-flight queue sends: a submitter either saw closed and
	// shed, or completes its send before the channel closes.
	e.closeMu.Lock()
	close(e.queue)
	e.closeMu.Unlock()
}

// Progress returns a monotonic, volatile activity counter that ticks at
// least once per scheduled window — during feature extraction (each
// switching draw) and during classification (each completed window). It
// is the supervisor's wedge signal: a slow shard keeps ticking at
// window granularity, a wedged one (workers blocked inside a
// classification that will never return) freezes entirely. Not
// persisted, not a metric; restored engines start from zero.
func (e *Engine) Progress() uint64 { return e.progress.Load() }

// Stats snapshots the engine's counters and per-detector health. The
// counters now live in the observability registry (the same numbers a
// /metrics scrape sees); the snapshot's public shape is unchanged.
func (e *Engine) Stats() Stats {
	g := e.pool.Load()
	det, quar, rest := g.health.snapshot()
	return Stats{
		PoolEpoch:          g.epoch,
		PoolSwaps:          e.ins.poolSwaps.Value(),
		ProgramsProcessed:  e.ins.programs.Value(),
		ProgramsShed:       e.ins.shed.Value(),
		ProgramsFailed:     e.ins.failed.Value(),
		ProgramsUndurable:  e.ins.undurable.Value(),
		Windows:            e.ins.windows.Value(),
		Flagged:            e.ins.flagged.Value(),
		Degraded:           e.ins.degraded.Value(),
		DroppedWindows:     e.ins.dropped.Value(),
		Retries:            e.ins.retries.Value(),
		Timeouts:           e.ins.timeouts.Value(),
		Panics:             e.ins.panics.Value(),
		WorkerCrashes:      e.ins.workerCrashes.Value(),
		CheckpointFailures: e.ins.ckptFailures.Value(),
		QueueDepth:         gaugeCount(e.ins.queueDepth),
		Inflight:           gaugeCount(e.ins.inflight),
		WorkersLive:        gaugeCount(e.ins.workersLive),
		Quarantines:        quar,
		Restores:           rest,
		Detectors:          det,
	}
}

// gaugeCount reads an occupancy gauge as a non-negative integer (a
// concurrent inc/dec pair can transiently expose a negative read).
func gaugeCount(g *obs.Gauge) uint64 {
	v := g.Value()
	if v < 0 {
		return 0
	}
	return uint64(v)
}

// worker consumes the queue until it closes or ctx is cancelled. A
// panic that escapes per-program recovery (a deliberate
// FaultWorkerCrash, or a real bug in the commit path) is absorbed
// here: the worker dies — it is never replaced — but the engine
// survives, counts the crash, and notifies Config.OnWorkerCrash so a
// supervisor can decide the shard's fate. Containment over silent
// continuation: a worker that crashed mid-commit must not keep
// touching shared state.
func (e *Engine) worker(ctx context.Context) {
	defer e.wg.Done()
	// Every exit — drain, cancellation, or crash — retires the worker
	// from the live gauge, so a drained engine reads 0 like a fresh one.
	defer e.ins.workersLive.Dec()
	defer func() {
		if r := recover(); r != nil {
			err := fmt.Errorf("monitor: worker crashed: %v", r)
			e.ins.panics.Inc()
			e.ins.workerCrashes.Inc()
			// The crash happened mid-program (nothing else panics), so
			// the in-flight slot this worker held is released.
			e.ins.inflight.Dec()
			e.tracer.Emit(obs.Event{Kind: obs.EvPanic, Detector: -1, Window: -1,
				Detail: fmt.Sprintf("worker crashed: %v", r)})
			if e.cfg.OnWorkerCrash != nil {
				e.cfg.OnWorkerCrash(err)
			}
		}
	}()
	for {
		select {
		case <-ctx.Done():
			return
		case sub, ok := <-e.queue:
			if !ok {
				return
			}
			e.ins.queueDepth.Dec()
			e.ins.inflight.Inc()
			tr := sub.tr
			tr.EndSpan(sub.wait)
			wk := tr.StartSpan(span.StageWorker, nil)
			rep := e.process(ctx, sub.p, tr, wk)
			tr.EndSpan(wk)
			// Commit (count + WAL-log) before the report becomes
			// visible: a consumer-observed verdict is always durable.
			ws := tr.StartSpan(span.StageWALFsync, nil)
			durable := e.commitVerdict(rep, tr, ws)
			tr.EndSpan(ws)
			// End-to-end verdict latency, submit → durable commit. It is
			// observed for every terminal outcome (including withheld
			// undurable verdicts), so percentile estimates cover exactly
			// the work the engine performed.
			e.ins.verdictLatency.ObserveSince(sub.ts)
			if rep.Err != nil {
				tr.Flag(span.ReasonErrored)
				if r := tr.Root(); r != nil {
					r.Err = rep.Err.Error()
				}
			}
			if !durable {
				// Strict durability: an unlogged verdict is never acked.
				// The program was classified but its result is withheld
				// (and counted); the consumer sees either a durable
				// verdict or nothing.
				tr.SetVerdict("undurable")
				tr.Finish()
				e.ins.inflight.Dec()
				continue
			}
			tr.SetVerdict(verdictLabel(rep))
			rep.TraceID = tr.Finish()
			e.ins.inflight.Dec()
			select {
			case e.results <- rep:
			case <-ctx.Done():
				return
			}
		}
	}
}

// verdictLabel names a report's terminal outcome for the kept trace.
func verdictLabel(rep Report) string {
	switch {
	case rep.Err != nil:
		return "failed"
	case rep.Malware:
		return "malware"
	default:
		return "benign"
	}
}
