package monitor

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// TestLivePoolCountsHalfOpenAsServing: a half-open detector receives
// probe traffic, so it is serving, not dead — the survival report must
// say so.
func TestLivePoolCountsHalfOpenAsServing(t *testing.T) {
	st := Stats{Detectors: []DetectorStats{
		{Spec: "a", State: Closed},
		{Spec: "b", State: HalfOpen},
		{Spec: "c", State: Open},
	}}
	if got := st.LivePool(); got != 2 {
		t.Fatalf("LivePool %d, want 2 (closed + half-open)", got)
	}
	if got := st.HalfOpen(); got != 1 {
		t.Fatalf("HalfOpen %d, want 1", got)
	}
	if s := st.String(); !strings.Contains(s, "2/3 detectors live (1 half-open)") {
		t.Fatalf("String does not surface half-open count:\n%s", s)
	}
}

// TestStatsMarshalJSON: the snapshot is machine-readable — breaker
// states as names, snake_case fields, and the derived pool rollup.
func TestStatsMarshalJSON(t *testing.T) {
	st := Stats{
		ProgramsProcessed: 3,
		Windows:           40,
		Flagged:           7,
		Quarantines:       1,
		Detectors: []DetectorStats{
			{Spec: "lr/instructions@2000", State: Closed, Calls: 30, Weight: 0.5, AvgLatency: 2 * time.Millisecond},
			{Spec: "lr/memory@2000", State: HalfOpen, Calls: 10, Failures: 4},
		},
	}
	raw, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var got struct {
		ProgramsProcessed uint64 `json:"programs_processed"`
		Windows           uint64 `json:"windows"`
		LivePool          int    `json:"live_pool"`
		HalfOpenPool      int    `json:"half_open_pool"`
		PoolSize          int    `json:"pool_size"`
		Detectors         []struct {
			Spec       string  `json:"spec"`
			State      string  `json:"state"`
			Weight     float64 `json:"weight"`
			AvgLatency int64   `json:"avg_latency_ns"`
		} `json:"detectors"`
	}
	if err := json.Unmarshal(raw, &got); err != nil {
		t.Fatalf("unmarshal %s: %v", raw, err)
	}
	if got.ProgramsProcessed != 3 || got.Windows != 40 {
		t.Fatalf("counters lost in JSON: %s", raw)
	}
	if got.LivePool != 2 || got.HalfOpenPool != 1 || got.PoolSize != 2 {
		t.Fatalf("derived pool rollup wrong: %s", raw)
	}
	if got.Detectors[0].State != "closed" || got.Detectors[1].State != "half-open" {
		t.Fatalf("states not marshalled as names: %s", raw)
	}
	if got.Detectors[0].AvgLatency != int64(2*time.Millisecond) {
		t.Fatalf("avg latency %d", got.Detectors[0].AvgLatency)
	}
}
