package monitor

import (
	"encoding/json"
	"io"
	"math"
	"net/http/httptest"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"rhmd/internal/core"
	"rhmd/internal/obs"
)

// scrape GETs path from an httptest server mounted over the engine's
// observability mux and returns the body.
func scrape(t *testing.T, srv *httptest.Server, path string) (string, string) {
	t.Helper()
	resp, err := srv.Client().Get(srv.URL + path)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("GET %s: status %d", path, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestMetricsEndpointServesSwitchingDistribution is the PR's acceptance
// scenario: a healthy engine serves a corpus while exposing /metrics
// over HTTP; the scrape must be valid Prometheus text exposition whose
// per-detector latency histograms are populated and whose switching-draw
// counters empirically match the configured LiveSampler weights.
func TestMetricsEndpointServesSwitchingDistribution(t *testing.T) {
	f := getFixture(t)
	r, err := core.New(f.pool, 0xFEED)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(1 << 14)
	e, err := New(r, Config{Workers: 4, QueueDepth: len(f.programs), TraceLen: f.traceLen,
		WindowDeadline: 2 * time.Second, Metrics: reg, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	if e.Registry() != reg {
		t.Fatal("engine did not adopt the provided registry")
	}
	runStream(t, e, f.programs)
	st := e.Stats()

	srv := httptest.NewServer(obs.NewMux(e.Registry(), tracer))
	defer srv.Close()
	body, ct := scrape(t, srv, "/metrics")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}

	// Valid exposition for the latency histograms: TYPE line, per-bucket
	// cumulative series with le labels, matching _count totals.
	if !strings.Contains(body, "# TYPE rhmd_monitor_detector_latency_seconds histogram") {
		t.Fatal("latency histogram family missing")
	}
	if !regexp.MustCompile(`rhmd_monitor_detector_latency_seconds_bucket\{detector="0",spec="[^"]+",le="\+Inf"\} \d+`).MatchString(body) {
		t.Fatal("latency histogram +Inf bucket missing for detector 0")
	}
	latCounts := parseSamples(t, body, "rhmd_monitor_detector_latency_seconds_count")
	var latTotal uint64
	for _, v := range latCounts {
		latTotal += v
	}
	if latTotal != st.Windows {
		t.Fatalf("latency observations %d != classified windows %d (healthy pool: one call per window)", latTotal, st.Windows)
	}

	// Counter consistency: the scrape and Stats() are the same numbers.
	wins := parseSamples(t, body, "rhmd_monitor_windows_total")
	if wins[`outcome="classified"`] != st.Windows || wins[`outcome="flagged"`] != st.Flagged {
		t.Fatalf("scraped windows %v disagree with stats %+v", wins, st)
	}
	progs := parseSamples(t, body, "rhmd_monitor_programs_total")
	if progs[`outcome="processed"`] != st.ProgramsProcessed {
		t.Fatalf("scraped programs %v disagree with stats %+v", progs, st)
	}

	// The acceptance check: empirical switching-draw distribution vs the
	// configured LiveSampler weights. The pool stayed healthy, so every
	// detector's weight is its original switching probability.
	draws := parseSamples(t, body, "rhmd_monitor_switch_draws_total")
	if len(draws) != r.Size() {
		t.Fatalf("draw counters for %d detectors, want %d", len(draws), r.Size())
	}
	var total uint64
	for _, v := range draws {
		total += v
	}
	// The scheduler runs one pick ahead of extraction, so each program
	// costs one extra draw for its discarded trailing partial window.
	if want := st.Windows + st.ProgramsProcessed; total != want {
		t.Fatalf("%d draws, want %d (one per window plus one trailing draw per program)", total, want)
	}
	detRE := regexp.MustCompile(`detector="(\d+)"`)
	for labels, v := range draws {
		m := detRE.FindStringSubmatch(labels)
		if m == nil {
			t.Fatalf("draw sample %q lacks detector label", labels)
		}
		i, _ := strconv.Atoi(m[1])
		got := float64(v) / float64(total)
		want := st.Detectors[i].Weight
		if math.Abs(got-want) > 0.05 {
			t.Fatalf("detector %d empirical draw share %.4f vs LiveSampler weight %.4f (>0.05 off, %d/%d draws)",
				i, got, want, v, total)
		}
	}

	// The event ring drains over the same mux and saw the lifecycle.
	tbody, tct := scrape(t, srv, "/events")
	if !strings.HasPrefix(tct, "application/json") {
		t.Fatalf("trace content type %q", tct)
	}
	var evs []obs.Event
	if err := json.Unmarshal([]byte(tbody), &evs); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, ev := range evs {
		kinds[ev.Kind]++
	}
	for _, k := range []string{obs.EvSubmit, obs.EvExtract, obs.EvVerdict} {
		if kinds[k] == 0 {
			t.Fatalf("no %q events in trace drain (kinds: %v)", k, kinds)
		}
	}
}

// parseSamples extracts `name{labels} value` samples for one family into
// a labels → value map (labels may be empty for scalar families).
func parseSamples(t *testing.T, body, name string) map[string]uint64 {
	t.Helper()
	re := regexp.MustCompile(`(?m)^` + regexp.QuoteMeta(name) + `(?:\{([^}]*)\})? (\d+)$`)
	out := map[string]uint64{}
	for _, m := range re.FindAllStringSubmatch(body, -1) {
		v, err := strconv.ParseUint(m[2], 10, 64)
		if err != nil {
			t.Fatalf("sample %q: %v", m[0], err)
		}
		out[m[1]] = v
	}
	if len(out) == 0 {
		t.Fatalf("no samples for %s", name)
	}
	return out
}

// TestFaultEventsReachTracerAndMetrics: under injected faults the
// breaker lifecycle shows up as quarantine/restore events in the ring
// and as transition counters, weight gauges and state gauges on /metrics.
func TestFaultEventsReachTracerAndMetrics(t *testing.T) {
	f := getFixture(t)
	r, err := core.New(f.pool, 0xFEED)
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	tracer := obs.NewTracer(1 << 14)
	deadline := 30 * time.Millisecond
	e, err := New(r, Config{Workers: 1, QueueDepth: len(f.programs), TraceLen: f.traceLen,
		WindowDeadline: deadline, ProbeAfter: 40,
		Injector: acceptanceInjector(deadline, 4), Metrics: reg, Tracer: tracer})
	if err != nil {
		t.Fatal(err)
	}
	runStream(t, e, f.programs)
	st := e.Stats()
	if st.Quarantines == 0 || st.Restores == 0 {
		t.Fatalf("fixture did not exercise breaker lifecycle: %+v", st)
	}

	var sb strings.Builder
	if err := reg.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	body := sb.String()
	trans := parseSamples(t, body, "rhmd_monitor_breaker_transitions_total")
	if trans[`kind="quarantine"`] != st.Quarantines || trans[`kind="restore"`] != st.Restores {
		t.Fatalf("scraped transitions %v disagree with stats q=%d r=%d", trans, st.Quarantines, st.Restores)
	}
	faults := parseSamples(t, body, "rhmd_monitor_faults_total")
	if faults[`kind="retry"`] != st.Retries || faults[`kind="timeout"`] != st.Timeouts || faults[`kind="panic"`] != st.Panics {
		t.Fatalf("scraped faults %v disagree with stats %+v", faults, st)
	}
	// Detector 1 is permanently quarantined: weight gauge 0, state 1.
	if !regexp.MustCompile(`(?m)^rhmd_monitor_detector_weight\{detector="1",spec="[^"]+"\} 0$`).MatchString(body) {
		t.Fatal("quarantined detector 1 weight gauge not zero")
	}
	if !regexp.MustCompile(`(?m)^rhmd_monitor_detector_state\{detector="1",spec="[^"]+"\} 1$`).MatchString(body) {
		t.Fatal("quarantined detector 1 state gauge not open")
	}

	kinds := map[string]int{}
	for _, ev := range tracer.Snapshot() {
		kinds[ev.Kind]++
	}
	for _, k := range []string{obs.EvQuarantine, obs.EvProbe, obs.EvRestore, obs.EvRetry, obs.EvTimeout, obs.EvPanic, obs.EvDegraded} {
		if kinds[k] == 0 {
			t.Fatalf("no %q events in ring (kinds: %v)", k, kinds)
		}
	}
}
