package monitor

import (
	"strconv"

	"rhmd/internal/core"
	"rhmd/internal/obs"
)

// instruments is the engine's registry-backed accounting. Every child is
// resolved once here, at engine construction, so the hot path touches
// only pre-bound atomics — no label lookups, no locks. It replaces the
// old private counters struct; Stats() reads back through it, keeping
// the public Stats shape unchanged.
type instruments struct {
	programs  *obs.Counter // fully classified programs
	shed      *obs.Counter // submissions rejected by backpressure
	failed    *obs.Counter // trace/extraction failures
	undurable *obs.Counter // verdicts withheld under StrictDurability (WAL append failed)

	windows  *obs.Counter // classified windows
	flagged  *obs.Counter // subset flagged malware
	degraded *obs.Counter // subset classified by a fallback detector
	dropped  *obs.Counter // windows no live detector could classify

	retries       *obs.Counter
	timeouts      *obs.Counter
	panics        *obs.Counter
	workerCrashes *obs.Counter // worker goroutines lost to escaped panics
	ckptFailures  *obs.Counter // failed WAL appends / snapshot saves

	quarantines *obs.Counter
	restores    *obs.Counter

	poolSwaps      *obs.Counter // pool generations published by SwapPool (rollbacks included)
	poolGeneration *obs.Gauge   // serving pool epoch

	// verdictLatency is the end-to-end submit→durable-commit latency per
	// program — the histogram the benchrunner estimates p50/p95/p99 from.
	verdictLatency *obs.Histogram

	queueDepth  *obs.Gauge // current submission-queue occupancy
	inflight    *obs.Gauge // programs picked up by workers, not yet reported
	workersLive *obs.Gauge // worker goroutines still alive
	poolLive    *obs.Gauge // detectors currently serving (closed + half-open)

	// Per-detector children, indexed by pool position.
	draws   []*obs.Counter   // switching draws from the live sampler
	latency []*obs.Histogram // per-call classification latency (seconds)
	weight  []*obs.Gauge     // renormalized switching weight (0 while quarantined)
	state   []*obs.Gauge     // breaker state as 0=closed 1=open 2=half-open
}

// newInstruments registers the engine's metric families in reg and
// resolves every per-detector child up front.
func newInstruments(reg *obs.Registry, r *core.RHMD) *instruments {
	progs := reg.CounterVec("rhmd_monitor_programs_total", "Programs by terminal outcome.", "outcome")
	wins := reg.CounterVec("rhmd_monitor_windows_total", "Windows by outcome; flagged and degraded are subsets of classified.", "outcome")
	faults := reg.CounterVec("rhmd_monitor_faults_total", "Fault-handling events.", "kind")
	breaker := reg.CounterVec("rhmd_monitor_breaker_transitions_total", "Circuit-breaker transitions.", "kind")
	ins := &instruments{
		programs:      progs.With("processed"),
		shed:          progs.With("shed"),
		failed:        progs.With("failed"),
		undurable:     progs.With("undurable"),
		windows:       wins.With("classified"),
		flagged:       wins.With("flagged"),
		degraded:      wins.With("degraded"),
		dropped:       wins.With("dropped"),
		retries:       faults.With("retry"),
		timeouts:      faults.With("timeout"),
		panics:        faults.With("panic"),
		workerCrashes: faults.With("worker-crash"),
		ckptFailures: reg.Counter("rhmd_monitor_checkpoint_failures_total",
			"Failed WAL appends and snapshot saves; a fleet supervisor restarts the shard past its limit."),
		verdictLatency: reg.Histogram("rhmd_monitor_verdict_latency_seconds",
			"End-to-end per-program verdict latency, submit to durable commit.", nil),
		quarantines: breaker.With("quarantine"),
		restores:    breaker.With("restore"),
		poolSwaps: reg.Counter("rhmd_pool_swaps_total",
			"Detector-pool generations published by SwapPool, rollbacks included."),
		poolGeneration: reg.Gauge("rhmd_pool_generation",
			"Serving detector-pool epoch; increments per swap, rollbacks included."),
		queueDepth:  reg.Gauge("rhmd_monitor_queue_depth", "Programs waiting in the submission queue."),
		inflight:    reg.Gauge("rhmd_monitor_inflight", "Programs picked up by workers and not yet reported."),
		workersLive: reg.Gauge("rhmd_monitor_workers_live", "Worker goroutines still alive (crashed workers are not replaced)."),
		poolLive:    reg.Gauge("rhmd_monitor_pool_live", "Detectors currently serving traffic (closed or half-open)."),
	}
	draws := reg.CounterVec("rhmd_monitor_switch_draws_total", "Switching draws routed to each detector by the live sampler.", "detector", "spec")
	lat := reg.HistogramVec("rhmd_monitor_detector_latency_seconds", "Per-detector classification latency, including retries.", nil, "detector", "spec")
	weight := reg.GaugeVec("rhmd_monitor_detector_weight", "Renormalized switching weight (0 while quarantined).", "detector", "spec")
	state := reg.GaugeVec("rhmd_monitor_detector_state", "Breaker state: 0 closed, 1 open, 2 half-open.", "detector", "spec")
	for i, d := range r.Detectors {
		idx, spec := strconv.Itoa(i), d.Spec.String()
		ins.draws = append(ins.draws, draws.With(idx, spec))
		ins.latency = append(ins.latency, lat.With(idx, spec))
		ins.weight = append(ins.weight, weight.With(idx, spec))
		ins.state = append(ins.state, state.With(idx, spec))
	}
	return ins
}
