package monitor

import (
	"bytes"
	"context"
	"fmt"
	"os"
	"testing"
	"time"

	"rhmd/internal/checkpoint"
	"rhmd/internal/core"
)

// variantPool deep-copies a pool (JSON round trip) and nudges every
// detector threshold — the shape of a retrained generation: same specs,
// probs and key, different trained parameters, different fingerprint.
// The copy is deterministic, so parent and re-exec'd child processes
// build bit-identical variants.
func variantPool(t testing.TB, base *core.RHMD) *core.RHMD {
	t.Helper()
	var buf bytes.Buffer
	if err := core.SaveRHMD(&buf, base); err != nil {
		t.Fatal(err)
	}
	v, err := core.LoadRHMD(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range v.Detectors {
		d.Threshold += 1e-6
	}
	if v.Fingerprint() == base.Fingerprint() {
		t.Fatal("variant pool fingerprint collided with base; Fingerprint must cover trained parameters")
	}
	return v
}

// TestSwapPoolUnderLoad is the zero-downtime core of the hot swap: a
// swap between two submission phases loses no acked verdict, in-flight
// work finishes on the generation that started it, and every verdict is
// stamped with the epoch that produced it.
func TestSwapPoolUnderLoad(t *testing.T) {
	f := getFixture(t)
	r, err := core.New(f.pool, 0x5AB1)
	if err != nil {
		t.Fatal(err)
	}
	next := variantPool(t, r)
	e, err := New(r, Config{Workers: 4, QueueDepth: len(f.programs), TraceLen: f.traceLen,
		WindowDeadline: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	e.Start(context.Background())

	half := len(f.programs) / 2
	for _, p := range f.programs[:half] {
		if !e.Submit(p) {
			t.Fatalf("submit of %q shed with roomy queue", p.Name)
		}
	}
	// Drain phase one completely so every pre-swap verdict is attributable.
	for i := 0; i < half; i++ {
		rep := <-e.Results()
		if rep.Err != nil {
			t.Fatalf("%s: %v", rep.Program, rep.Err)
		}
		if rep.PoolEpoch != 0 {
			t.Fatalf("pre-swap verdict %s stamped epoch %d, want 0", rep.Program, rep.PoolEpoch)
		}
	}

	epoch, err := e.SwapPool(next)
	if err != nil {
		t.Fatal(err)
	}
	if epoch != 1 || e.PoolEpoch() != 1 {
		t.Fatalf("swap returned epoch %d, engine at %d; want 1", epoch, e.PoolEpoch())
	}
	if e.PoolFingerprint() != next.Fingerprint() {
		t.Fatalf("serving fingerprint %016x, want the swapped pool's %016x", e.PoolFingerprint(), next.Fingerprint())
	}

	rest := f.programs[half:]
	go func() {
		for _, p := range rest {
			for !e.Submit(p) {
				time.Sleep(time.Millisecond)
			}
		}
		e.Close()
	}()
	got := 0
	for rep := range e.Results() {
		if rep.Err != nil {
			t.Fatalf("%s: %v", rep.Program, rep.Err)
		}
		if rep.PoolEpoch != 1 {
			t.Fatalf("post-swap verdict %s stamped epoch %d, want 1", rep.Program, rep.PoolEpoch)
		}
		got++
	}
	if got != len(rest) {
		t.Fatalf("second phase delivered %d verdicts for %d submissions", got, len(rest))
	}
	st := e.Stats()
	if st.PoolEpoch != 1 || st.PoolSwaps != 1 {
		t.Fatalf("stats pool_epoch=%d pool_swaps=%d, want 1/1", st.PoolEpoch, st.PoolSwaps)
	}
	if st.ProgramsProcessed != uint64(len(f.programs)) {
		t.Fatalf("processed %d of %d programs across the swap", st.ProgramsProcessed, len(f.programs))
	}
}

// TestSwapPoolValidates: a candidate that changes the pool shape (size
// or per-position spec) is rejected and the serving generation is
// untouched — per-detector instruments and breaker boards are
// position-bound.
func TestSwapPoolValidates(t *testing.T) {
	f := getFixture(t)
	r, err := core.New(f.pool, 0x5AB2)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(r, Config{Workers: 1, TraceLen: f.traceLen})
	if err != nil {
		t.Fatal(err)
	}
	smaller, err := core.New(f.pool[:4], 0x5AB2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.SwapPool(smaller); err == nil {
		t.Fatal("SwapPool accepted a pool of a different size")
	}
	if _, err := e.SwapPool(nil); err == nil {
		t.Fatal("SwapPool accepted a nil pool")
	}
	if e.PoolEpoch() != 0 || e.PoolFingerprint() != r.Fingerprint() {
		t.Fatalf("rejected swap moved the engine: epoch %d fingerprint %016x", e.PoolEpoch(), e.PoolFingerprint())
	}
}

// swapResolver maps fingerprints back to pools, the test double for a
// driftguard.Archive wired into Config.ResolvePool.
func swapResolver(pools ...*core.RHMD) func(epoch, fingerprint uint64) (*core.RHMD, error) {
	byFP := map[uint64]*core.RHMD{}
	for _, p := range pools {
		byFP[p.Fingerprint()] = p
	}
	return func(epoch, fingerprint uint64) (*core.RHMD, error) {
		p, ok := byFP[fingerprint]
		if !ok {
			return nil, fmt.Errorf("no archived pool with fingerprint %016x", fingerprint)
		}
		return p, nil
	}
}

// TestSwapRestoreRoundTrip: a durable engine that swapped mid-run
// restores onto the swapped generation — epoch, fingerprint and the
// cumulative verdict history all survive, with the swap WAL entry
// resolved through ResolvePool.
func TestSwapRestoreRoundTrip(t *testing.T) {
	f := getFixture(t)
	dir := t.TempDir()
	e := durableEngine(t, dir, 0x5AB3, nil)
	r := e.Pool()
	next := variantPool(t, r)

	e.Start(context.Background())
	phase := func(programs int) {
		for _, p := range f.programs[:programs] {
			for !e.Submit(p) {
				time.Sleep(time.Millisecond)
			}
		}
		for i := 0; i < programs; i++ {
			if rep := <-e.Results(); rep.Err != nil {
				t.Fatalf("%s: %v", rep.Program, rep.Err)
			}
		}
	}
	phase(3)
	if _, err := e.SwapPool(next); err != nil {
		t.Fatal(err)
	}
	phase(3)
	e.Close()
	for range e.Results() {
	}
	want := e.Stats()

	build := func(resolve func(uint64, uint64) (*core.RHMD, error)) (*Engine, error) {
		r2, err := core.New(f.pool, 0x5AB3)
		if err != nil {
			t.Fatal(err)
		}
		store, err := checkpoint.Open(dir, checkpoint.Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { store.Close() })
		e2, err := New(r2, Config{Workers: 2, TraceLen: f.traceLen, Checkpoint: store, ResolvePool: resolve})
		if err != nil {
			t.Fatal(err)
		}
		_, err = e2.Restore()
		return e2, err
	}

	// Without a resolver the snapshot's foreign fingerprint is a hard
	// error, exactly like the pre-swap contract.
	if _, err := build(nil); err == nil {
		t.Fatal("restore resolved a swapped pool without ResolvePool")
	}

	e2, err := build(swapResolver(r, next))
	if err != nil {
		t.Fatal(err)
	}
	if e2.PoolEpoch() != 1 || e2.PoolFingerprint() != next.Fingerprint() {
		t.Fatalf("restored epoch %d fingerprint %016x, want 1/%016x",
			e2.PoolEpoch(), e2.PoolFingerprint(), next.Fingerprint())
	}
	got := e2.Stats()
	if got.ProgramsProcessed != want.ProgramsProcessed || got.Windows != want.Windows {
		t.Fatalf("restored %d programs / %d windows, want %d / %d",
			got.ProgramsProcessed, got.Windows, want.ProgramsProcessed, want.Windows)
	}
}

// TestSwapWALCrashSweep enumerates every byte boundary of the pool-swap
// WAL sequence with the crash-injection filesystem: open a durable
// store, swap to a retrained pool (epoch 1), swap back (epoch 2, the
// rollback shape), crashing at each budget. Whatever survives, restore
// must land on exactly one generation — (0, base), (1, next) or
// (2, base) — never a torn hybrid, and never behind a swap that
// reported success before the crash.
func TestSwapWALCrashSweep(t *testing.T) {
	f := getFixture(t)
	base, err := core.New(f.pool, 0x5AB4)
	if err != nil {
		t.Fatal(err)
	}
	next := variantPool(t, base)
	fpBase, fpNext := base.Fingerprint(), next.Fingerprint()

	// script replays the swap sequence through fsys and reports how many
	// swaps were acknowledged (returned nil) before the crash.
	script := func(dir string, fsys checkpoint.FS) (acked int) {
		store, err := checkpoint.Open(dir, checkpoint.Options{FS: fsys})
		if err != nil {
			return 0
		}
		defer store.Close()
		e, err := New(base, Config{Workers: 1, TraceLen: f.traceLen, Checkpoint: store})
		if err != nil {
			return 0
		}
		if _, err := e.SwapPool(next); err != nil {
			return 0
		}
		if _, err := e.SwapPool(base); err != nil {
			return 1
		}
		return 2
	}

	probe := checkpoint.NewFailingFS(checkpoint.OSFS{}, 1<<30)
	if acked := script(t.TempDir(), probe); acked != 2 {
		t.Fatalf("unfailed script acked %d swaps, want 2", acked)
	}
	total := probe.Spent()
	if total < 20 {
		t.Fatalf("implausibly cheap swap sequence: %d units", total)
	}

	root := t.TempDir()
	for budget := 0; budget < total; budget++ {
		dir := fmt.Sprintf("%s/b%04d", root, budget)
		if err := os.Mkdir(dir, 0o755); err != nil {
			t.Fatal(err)
		}
		fsys := checkpoint.NewFailingFS(checkpoint.OSFS{}, budget)
		acked := script(dir, fsys)
		if !fsys.Crashed() {
			t.Fatalf("budget %d: script finished without hitting the crash point", budget)
		}

		store, err := checkpoint.Open(dir, checkpoint.Options{})
		if err != nil {
			t.Fatalf("budget %d: reopening survivors: %v", budget, err)
		}
		e2, err := New(base, Config{Workers: 1, TraceLen: f.traceLen, Checkpoint: store,
			ResolvePool: swapResolver(base, next)})
		if err != nil {
			t.Fatalf("budget %d: %v", budget, err)
		}
		if _, err := e2.Restore(); err != nil {
			t.Fatalf("budget %d: restore on survivors failed: %v", budget, err)
		}
		ep, fp := e2.PoolEpoch(), e2.PoolFingerprint()
		wantFP := map[uint64]uint64{0: fpBase, 1: fpNext, 2: fpBase}
		expected, known := wantFP[ep]
		if !known || fp != expected {
			t.Fatalf("budget %d: restored (epoch %d, fingerprint %016x) is a torn hybrid (base %016x, next %016x)",
				budget, ep, fp, fpBase, fpNext)
		}
		// A swap that returned success was fsynced; the restored epoch may
		// run ahead of the ack count (crash after full write, before the
		// ack), never behind it.
		if ep < uint64(acked) {
			t.Fatalf("budget %d: restored epoch %d behind %d acknowledged swaps", budget, ep, acked)
		}
		if err := store.Close(); err != nil {
			t.Fatalf("budget %d: closing survivor store: %v", budget, err)
		}
	}
}
