package monitor

import (
	"bytes"
	"context"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"rhmd/internal/checkpoint"
	"rhmd/internal/core"
)

// durableEngine builds an engine over the shared fixture pool with a
// checkpoint store in dir.
func durableEngine(t *testing.T, dir string, key uint64, injector FaultInjector) *Engine {
	t.Helper()
	f := getFixture(t)
	r, err := core.New(f.pool, key)
	if err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.Open(dir, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(r, Config{Workers: 4, QueueDepth: 64, TraceLen: f.traceLen,
		WindowDeadline: 2 * time.Second, FailureThreshold: 2, ProbeAfter: 1 << 30,
		Injector: injector, Checkpoint: store,
		CheckpointEvery: time.Hour, // periodic ticks off; saves come from drain/final flush
	})
	if err != nil {
		t.Fatal(err)
	}
	return e
}

// TestCheckpointRestoreExactAfterDrain: a drained engine's final
// checkpoint restores bit-for-bit — cumulative Stats, per-detector
// health rows, quarantine state and renormalized weights — into a
// fresh engine over the same pool.
func TestCheckpointRestoreExactAfterDrain(t *testing.T) {
	f := getFixture(t)
	dir := t.TempDir()
	// Permanently fault detector 2 so the checkpoint carries a
	// quarantined breaker and a renormalized live distribution.
	in := NewInjector(7)
	in.SetProfile(2, Profile{ErrorRate: 1})
	e := durableEngine(t, dir, 0xD00D, in)
	reports := runStream(t, e, f.programs)
	if len(reports) != len(f.programs) {
		t.Fatalf("%d reports for %d programs", len(reports), len(f.programs))
	}
	want := e.Stats()
	if want.Quarantines == 0 {
		t.Fatal("fixture did not quarantine the faulty detector; test needs a live-set change")
	}

	e2 := durableEngine(t, dir, 0xD00D, nil)
	info, err := e2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if info == nil {
		t.Fatal("restore found no checkpoint after a drained run")
	}
	if info.Gen == 0 {
		t.Fatalf("restore info %+v: drain must have flushed a final snapshot", info)
	}
	got := e2.Stats()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("restored Stats differ:\n got: %+v\nwant: %+v", got, want)
	}
	if got.Detectors[2].State != Open {
		t.Fatalf("restored detector 2 state %s, want open (quarantined)", got.Detectors[2].State)
	}
	if got.Detectors[2].Weight != 0 {
		t.Fatalf("restored quarantined detector kept weight %v", got.Detectors[2].Weight)
	}

	// The restored engine serves traffic on the renormalized survivor
	// distribution: stream the corpus again and verify counters keep
	// growing monotonically from the restored baseline.
	reports2 := runStream(t, e2, f.programs)
	if len(reports2) != len(f.programs) {
		t.Fatalf("restored engine returned %d reports", len(reports2))
	}
	st := e2.Stats()
	if st.ProgramsProcessed+st.ProgramsFailed != (want.ProgramsProcessed+want.ProgramsFailed)+uint64(len(f.programs)) {
		t.Fatalf("restored engine lost history: %d programs after %d restored + %d new",
			st.ProgramsProcessed+st.ProgramsFailed, want.ProgramsProcessed+want.ProgramsFailed, len(f.programs))
	}
}

// TestWALOnlyRecovery: kill the engine before any snapshot exists (no
// Close, no periodic tick) and the consumed verdicts are still
// recoverable — they were WAL-logged before they were visible.
func TestWALOnlyRecovery(t *testing.T) {
	f := getFixture(t)
	dir := t.TempDir()
	e := durableEngine(t, dir, 0xBEEF, nil)
	e.Start(context.Background())
	n := 6
	go func() {
		for _, p := range f.programs[:n] {
			for !e.Submit(p) {
				time.Sleep(time.Millisecond)
			}
		}
	}()
	seen := 0
	var windows, flagged uint64
	for rep := range e.Results() {
		if rep.Err != nil {
			t.Fatalf("%s: %v", rep.Program, rep.Err)
		}
		seen++
		windows += uint64(rep.Windows)
		flagged += uint64(rep.Flagged)
		if seen == n {
			break
		}
	}
	// The engine is now abandoned mid-flight — no Close, no drain, the
	// moral equivalent of SIGKILL for the store's contents.

	e2 := durableEngine(t, dir, 0xBEEF, nil)
	info, err := e2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if info == nil || info.Gen != 0 {
		t.Fatalf("expected generation-0 (WAL-only) recovery, got %+v", info)
	}
	st := e2.Stats()
	if st.ProgramsProcessed < uint64(n) {
		t.Fatalf("restored %d programs, consumer had observed %d", st.ProgramsProcessed, n)
	}
	if st.Windows < windows || st.Flagged < flagged {
		t.Fatalf("restored windows/flagged %d/%d below observed %d/%d", st.Windows, st.Flagged, windows, flagged)
	}
}

// TestRestoreRejectsForeignPool: a checkpoint from one pool must not
// load into an engine serving another (different switching key here;
// the fingerprint also covers specs and weights).
func TestRestoreRejectsForeignPool(t *testing.T) {
	f := getFixture(t)
	dir := t.TempDir()
	e := durableEngine(t, dir, 0xAAAA, nil)
	runStream(t, e, f.programs[:4])

	e2 := durableEngine(t, dir, 0xBBBB, nil)
	if _, err := e2.Restore(); err == nil || !strings.Contains(err.Error(), "different pool") {
		t.Fatalf("foreign-pool restore error = %v, want fingerprint rejection", err)
	}
}

// TestRestoreAfterStartRejected guards the construction order: restore
// must land on a zero-state engine.
func TestRestoreAfterStartRejected(t *testing.T) {
	dir := t.TempDir()
	e := durableEngine(t, dir, 0xCCCC, nil)
	e.Start(context.Background())
	defer e.Close()
	if _, err := e.Restore(); err == nil {
		t.Fatal("Restore after Start must be rejected")
	}
}

// TestCorruptNewestGenerationFallsBack: bit rot on the newest snapshot
// makes restore fall back to the previous generation and surface the
// fallback in the engine's /metrics.
func TestCorruptNewestGenerationFallsBack(t *testing.T) {
	f := getFixture(t)
	dir := t.TempDir()
	e := durableEngine(t, dir, 0xEEEE, nil)
	e.Start(context.Background())
	go func() {
		for _, p := range f.programs[:4] {
			for !e.Submit(p) {
				time.Sleep(time.Millisecond)
			}
		}
		// Two explicit generations, then drain (a third, final one).
		e.Close()
	}()
	for range e.Results() {
	}
	if _, err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}

	// Corrupt the newest snapshot on disk.
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.ckpt"))
	if err != nil || len(names) < 2 {
		t.Fatalf("want ≥2 snapshot generations, have %v (err %v)", names, err)
	}
	newest := names[len(names)-1]
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x10
	if err := os.WriteFile(newest, data, 0o644); err != nil {
		t.Fatal(err)
	}

	e2 := durableEngine(t, dir, 0xEEEE, nil)
	info, err := e2.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if info.Fallbacks != 1 {
		t.Fatalf("restore fallbacks = %d, want 1", info.Fallbacks)
	}
	st := e2.Stats()
	if st.ProgramsProcessed != 4 {
		t.Fatalf("fallback generation restored %d programs, want 4", st.ProgramsProcessed)
	}
	var buf bytes.Buffer
	if err := e2.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `rhmd_checkpoint_ops_total{op="corruption_fallback"} 1`) {
		t.Fatalf("corruption fallback not visible in /metrics:\n%s", buf.String())
	}
}
