package monitor

import (
	"testing"
	"time"

	"rhmd/internal/checkpoint"
	"rhmd/internal/core"
	"rhmd/internal/obs"
	"rhmd/internal/obs/span"
)

// TestVerdictTracesAreWellFormedTrees is the span-tracing e2e: a full
// corpus streamed through an engine with fault injection, a durable
// checkpoint store, concurrent workers and keep-everything sampling —
// run under -race in CI. Every kept trace must be a well-formed tree:
// exactly one root, no orphan parent references, every child's
// interval inside its parent's, and a wal-fsync span on every emitted
// verdict. Every report's TraceID must resolve to a kept trace.
func TestVerdictTracesAreWellFormedTrees(t *testing.T) {
	f := getFixture(t)
	r, err := core.New(f.pool, 0xFEED)
	if err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.Open(t.TempDir(), checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	reg := obs.NewRegistry()
	rec, err := span.NewRecorder(span.Config{
		Seed: 0xFEED,
		Now:  time.Now,
		// Keep every trace and size the ring so nothing is overwritten:
		// the assertions below must see the complete population.
		KeepEvery: 1,
		Capacity:  4 * len(f.programs),
		Slow:      time.Hour,
	}, reg)
	if err != nil {
		t.Fatal(err)
	}
	deadline := 30 * time.Millisecond
	e, err := New(r, Config{
		Workers: 4, QueueDepth: len(f.programs), TraceLen: f.traceLen,
		WindowDeadline: deadline, ProbeAfter: 40,
		Injector:   acceptanceInjector(deadline, 4),
		Metrics:    reg,
		Spans:      rec,
		Exemplars:  true,
		Checkpoint: store,
		// Long enough that only the final drain checkpoint fires
		// deterministically; periodic ones are a bonus if the run is slow.
		CheckpointEvery: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	reports := runStream(t, e, f.programs)

	byID := map[string]*span.KeptTrace{}
	verdicts := 0
	for _, kt := range rec.Snapshot() {
		byID[kt.TraceID] = kt
		assertWellFormed(t, kt)
		if kt.Spans[0].Stage == span.StageVerdict {
			verdicts++
		}
	}
	// KeepEvery=1 with an oversized ring: every emitted verdict trace
	// survives, plus at least the final drain checkpoint's root trace.
	if verdicts != len(reports) {
		t.Fatalf("%d kept verdict traces for %d reports", verdicts, len(reports))
	}
	if verdicts == len(byID) {
		t.Fatal("no checkpoint trace kept (final drain snapshot missing)")
	}
	for name, rep := range reports {
		if rep.TraceID == "" {
			t.Fatalf("%s: report has no trace ID under keep-everything sampling", name)
		}
		kt, ok := byID[rep.TraceID]
		if !ok {
			t.Fatalf("%s: trace %s not in the kept ring", name, rep.TraceID)
		}
		if kt.Program != name {
			t.Fatalf("trace %s belongs to %q, report says %q", rep.TraceID, kt.Program, name)
		}
	}
	if rec.Kept() == 0 || rec.Dropped() != 0 {
		t.Fatalf("sampler accounting kept=%d dropped=%d under keep-everything", rec.Kept(), rec.Dropped())
	}
}

// assertWellFormed checks one kept trace's tree invariants.
func assertWellFormed(t *testing.T, kt *span.KeptTrace) {
	t.Helper()
	if len(kt.Spans) == 0 {
		t.Fatalf("trace %s has no spans", kt.TraceID)
	}
	spans := map[string]span.SpanRecord{}
	roots, fsyncs := 0, 0
	for _, s := range kt.Spans {
		if s.SpanID == "" {
			t.Fatalf("trace %s: span with empty ID", kt.TraceID)
		}
		if _, dup := spans[s.SpanID]; dup {
			t.Fatalf("trace %s: duplicate span ID %s", kt.TraceID, s.SpanID)
		}
		spans[s.SpanID] = s
		if s.ParentID == "" {
			roots++
			if s.Stage != span.StageVerdict && s.Stage != span.StageCheckpoint {
				t.Fatalf("trace %s: root stage %q", kt.TraceID, s.Stage)
			}
		}
		if s.Stage == span.StageWALFsync {
			fsyncs++
		}
	}
	if roots != 1 {
		t.Fatalf("trace %s: %d roots", kt.TraceID, roots)
	}
	root := kt.Spans[0]
	if root.ParentID != "" {
		t.Fatalf("trace %s: first span %q is not the root", kt.TraceID, root.Stage)
	}
	if root.Stage == span.StageVerdict && fsyncs != 1 {
		t.Fatalf("trace %s: verdict carries %d wal-fsync spans, want 1", kt.TraceID, fsyncs)
	}
	for _, s := range kt.Spans {
		if s.Dur < 0 {
			t.Fatalf("trace %s: span %s(%s) negative duration %v", kt.TraceID, s.SpanID, s.Stage, s.Dur)
		}
		if s.ParentID == "" {
			continue
		}
		p, ok := spans[s.ParentID]
		if !ok {
			t.Fatalf("trace %s: span %s(%s) references unknown parent %s", kt.TraceID, s.SpanID, s.Stage, s.ParentID)
		}
		if s.Start.Before(p.Start) {
			t.Fatalf("trace %s: %s span starts %v before its %s parent", kt.TraceID, s.Stage, p.Start.Sub(s.Start), p.Stage)
		}
		if end, pend := s.Start.Add(s.Dur), p.Start.Add(p.Dur); end.After(pend) {
			t.Fatalf("trace %s: %s span ends %v after its %s parent", kt.TraceID, s.Stage, end.Sub(pend), p.Stage)
		}
	}
}
