package monitor

import (
	"errors"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"time"

	"rhmd/internal/rng"
)

// FaultKind enumerates the failure modes the harness can inject into a
// base detector, mirroring how deployed HMD hardware actually misbehaves:
// transient errors (bus/ECC glitches), hard faults that crash the
// inference block (panics), stalls (latency beyond the window deadline),
// and silent data corruption of the feature vector.
type FaultKind uint8

// Fault kinds.
const (
	FaultNone FaultKind = iota
	// FaultError makes the classification call return ErrInjected.
	FaultError
	// FaultPanic makes the classification call panic.
	FaultPanic
	// FaultLatency stalls the classification call for Fault.Latency
	// before letting it proceed; with a stall beyond the engine's window
	// deadline this manifests as a timeout.
	FaultLatency
	// FaultCorrupt replaces the feature vector with NaNs before scoring,
	// modelling silent corruption of the counter bus. The engine detects
	// the resulting non-finite score and treats it as a failure.
	FaultCorrupt
	// FaultWedge blocks the worker itself — not the scored detector call
	// — until the engine's context is cancelled. Unlike FaultLatency it
	// cannot be rescued by the window deadline, so a wedged worker holds
	// its in-flight program forever: the signature of a poisoned queue
	// that only shard teardown clears. Fleet chaos scripts use it to
	// prove supervisor wedge detection.
	FaultWedge
	// FaultWorkerCrash panics through the worker's panic recovery (the
	// engine rethrows it past the per-program recover), killing the
	// worker goroutine itself. The engine absorbs the crash at the
	// worker loop, counts it, and notifies Config.OnWorkerCrash — the
	// shard-death signal a fleet supervisor restarts on.
	FaultWorkerCrash
)

var faultNames = [...]string{"none", "error", "panic", "latency", "corrupt", "wedge", "worker-crash"}

// String returns the fault mnemonic.
func (k FaultKind) String() string {
	if int(k) < len(faultNames) {
		return faultNames[k]
	}
	return "fault(?)"
}

// ErrInjected is the error returned by a classification call hit by
// FaultError.
var ErrInjected = errors.New("monitor: injected detector fault")

// Fault is one injected failure: the mode plus its latency (for
// FaultLatency).
type Fault struct {
	Kind    FaultKind
	Latency time.Duration
}

// FaultContext identifies one classification attempt, so injectors can
// make deterministic decisions that do not depend on goroutine
// interleaving: the same (detector, program, window, attempt) tuple
// always sees the same fault.
type FaultContext struct {
	// Detector is the pool index of the base detector being called.
	Detector int
	// ProgSeed and ProgName identify the program under classification.
	ProgSeed uint64
	ProgName string
	// Window is the window index within the program's trace.
	Window int
	// Attempt is the retry attempt number (0 = first try).
	Attempt int
}

// FaultInjector decides, per classification attempt, which fault (if
// any) to inject. Implementations must be safe for concurrent use.
type FaultInjector interface {
	Fault(fc FaultContext) Fault
}

// Profile configures the fault behaviour of one detector under an
// Injector. Rates are probabilities in [0, 1], evaluated cumulatively in
// the order error, panic, latency, corrupt; a rate of 1 forces that mode
// on every call.
type Profile struct {
	ErrorRate   float64
	PanicRate   float64
	LatencyRate float64
	CorruptRate float64
	// Latency is the stall injected by FaultLatency.
	Latency time.Duration
	// Until, when positive, limits the profile to the first Until calls
	// the injector observes for this detector — the detector "recovers"
	// afterwards, which is how tests exercise half-open probing.
	Until uint64
}

// Injector is the standard FaultInjector: per-detector profiles with
// seeded, interleaving-independent decisions. The fault for a given
// FaultContext is a pure function of the seed and the context, so runs
// with the same corpus and engine schedule reproduce the same faults
// regardless of worker count.
type Injector struct {
	seed     uint64
	fallback Profile

	mu       sync.Mutex
	profiles map[int]Profile
	calls    map[int]uint64
}

// NewInjector builds an Injector with no faults configured.
func NewInjector(seed uint64) *Injector {
	return &Injector{
		seed:     seed,
		profiles: map[int]Profile{},
		calls:    map[int]uint64{},
	}
}

// SetProfile installs the fault profile for one detector index.
func (in *Injector) SetProfile(det int, p Profile) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.profiles[det] = p
}

// SetDefault installs the profile applied to detectors without an
// explicit one.
func (in *Injector) SetDefault(p Profile) {
	in.mu.Lock()
	defer in.mu.Unlock()
	in.fallback = p
}

// Fault implements FaultInjector.
func (in *Injector) Fault(fc FaultContext) Fault {
	in.mu.Lock()
	p, ok := in.profiles[fc.Detector]
	if !ok {
		p = in.fallback
	}
	calls := in.calls[fc.Detector]
	if fc.Attempt == 0 {
		// Count distinct windows, not retries, so Until measures how much
		// work a detector failed, not how hard the engine retried.
		in.calls[fc.Detector] = calls + 1
	} else if calls > 0 {
		// A retry belongs to the window whose first attempt already
		// advanced the counter; judge it by that window's count.
		calls--
	}
	in.mu.Unlock()

	if p.Until > 0 && calls >= p.Until {
		return Fault{}
	}
	r := rng.NewKeyed(in.seed^mixFault(fc), "monitor-fault")
	u := r.Float64()
	switch {
	case u < p.ErrorRate:
		return Fault{Kind: FaultError}
	case u < p.ErrorRate+p.PanicRate:
		return Fault{Kind: FaultPanic}
	case u < p.ErrorRate+p.PanicRate+p.LatencyRate:
		return Fault{Kind: FaultLatency, Latency: p.Latency}
	case u < p.ErrorRate+p.PanicRate+p.LatencyRate+p.CorruptRate:
		return Fault{Kind: FaultCorrupt}
	}
	return Fault{}
}

// ShardFaultKind enumerates the shard-scoped failure modes of the
// kill-a-shard chaos harness. Where FaultKind models one misbehaving
// detector, these model one dying failure domain: a whole engine shard
// losing its disk, its queue, or a worker.
type ShardFaultKind uint8

// Shard fault kinds.
const (
	// ShardCrashAtByte kills the shard's checkpoint disk after a byte
	// budget: every write past the budget fails (possibly tearing
	// mid-record), exactly like checkpoint.FailingFS — because it is
	// one. The shard keeps classifying but can no longer make verdicts
	// durable; a supervisor restarts it once checkpoint failures cross
	// its limit, and recovery must replay the surviving snapshot+WAL.
	ShardCrashAtByte ShardFaultKind = iota
	// ShardWedgeQueue arms FaultWedge on every classification once the
	// shard has delivered Arg verdicts: all workers block, in-flight
	// programs never finish, and the submission queue backs up behind
	// them until the supervisor declares the shard wedged.
	ShardWedgeQueue
	// ShardPanicWorker arms FaultWorkerCrash once the shard has
	// delivered Arg verdicts: the next classifications panic through
	// worker recovery, killing worker goroutines one by one.
	ShardPanicWorker
)

var shardFaultNames = [...]string{"crash-at-byte", "wedge-queue", "panic-worker"}

// String returns the shard fault mnemonic.
func (k ShardFaultKind) String() string {
	if int(k) < len(shardFaultNames) {
		return shardFaultNames[k]
	}
	return "shard-fault(?)"
}

// ShardFault is one scripted failure of one shard.
type ShardFault struct {
	// Shard is the target shard index.
	Shard int
	// Kind is the failure mode.
	Kind ShardFaultKind
	// Arg parameterizes the fault: for ShardCrashAtByte it is the
	// checkpoint-store byte budget before the disk dies; for
	// ShardWedgeQueue and ShardPanicWorker it is how many verdicts the
	// shard delivers before the fault arms.
	Arg uint64
}

// ShardScript is a deterministic kill-a-shard scenario: a set of
// scripted shard faults a fleet applies to the first life (generation
// 0) of each targeted shard. Restarted generations run clean, so every
// script converges to a healthy fleet — the chaos harness proves the
// road back, not just the outage.
type ShardScript struct {
	Faults []ShardFault
}

// ForShard returns the scripted faults targeting shard idx.
func (s *ShardScript) ForShard(idx int) []ShardFault {
	if s == nil {
		return nil
	}
	var out []ShardFault
	for _, f := range s.Faults {
		if f.Shard == idx {
			out = append(out, f)
		}
	}
	return out
}

// ParseShardScript parses the CLI chaos syntax: comma-separated
// shard:mode:arg triples, e.g. "1:wedge:25,0:crash:4096,2:panic:10".
// Modes: crash (arg = checkpoint byte budget), wedge and panic (arg =
// verdicts delivered before the fault arms). An empty string is a nil
// script.
func ParseShardScript(s string) (*ShardScript, error) {
	if s == "" {
		return nil, nil
	}
	script := &ShardScript{}
	for _, part := range strings.Split(s, ",") {
		fields := strings.Split(strings.TrimSpace(part), ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("monitor: bad shard fault %q (want shard:mode:arg)", part)
		}
		shard, err := strconv.Atoi(fields[0])
		if err != nil || shard < 0 {
			return nil, fmt.Errorf("monitor: bad shard index in %q", part)
		}
		var kind ShardFaultKind
		switch fields[1] {
		case "crash", "crash-at-byte":
			kind = ShardCrashAtByte
		case "wedge", "wedge-queue":
			kind = ShardWedgeQueue
		case "panic", "panic-worker":
			kind = ShardPanicWorker
		default:
			return nil, fmt.Errorf("monitor: unknown shard fault mode %q (want crash, wedge or panic)", fields[1])
		}
		arg, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("monitor: bad shard fault arg in %q: %v", part, err)
		}
		script.Faults = append(script.Faults, ShardFault{Shard: shard, Kind: kind, Arg: arg})
	}
	return script, nil
}

// mixFault folds a fault context into one well-mixed 64-bit value
// (SplitMix64 finalizer over the tuple components).
func mixFault(fc FaultContext) uint64 {
	h := fc.ProgSeed
	for _, v := range [...]uint64{uint64(fc.Detector), uint64(fc.Window), uint64(fc.Attempt)} {
		h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
		h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9
		h = (h ^ (h >> 27)) * 0x94d049bb133111eb
		h ^= h >> 31
	}
	return h
}
