package monitor

import (
	"fmt"
	"sync"
	"time"

	"rhmd/internal/core"
	"rhmd/internal/obs"
	"rhmd/internal/rng"
)

// BreakerState is the health state of one base detector.
type BreakerState uint8

// Breaker states, the usual circuit-breaker trio: a Closed breaker
// passes traffic, an Open one is quarantined out of the switching
// distribution, a HalfOpen one is receiving a single probe window to
// decide between restore and re-quarantine.
const (
	Closed BreakerState = iota
	Open
	HalfOpen
)

var breakerNames = [...]string{"closed", "open", "half-open"}

// String returns the state name.
func (s BreakerState) String() string {
	if int(s) < len(breakerNames) {
		return breakerNames[s]
	}
	return "state(?)"
}

// breaker tracks one detector's consecutive-failure history.
type breaker struct {
	state       BreakerState
	consecFails int
	// openedAt is the pool-wide window counter value when the breaker
	// opened; probing becomes eligible probeAfter windows later.
	openedAt uint64

	calls     uint64
	failures  uint64
	latencyNs int64
}

// healthBoard owns the per-detector breakers and the live switching
// sampler. All transitions happen under mu; the sampler is rebuilt (via
// core.RHMD.LiveSampler) whenever the live set changes, so sampling
// always reflects the renormalized survivor distribution.
type healthBoard struct {
	rhmd       *core.RHMD
	threshold  int // consecutive failures that open a breaker
	probeAfter uint64

	mu       sync.Mutex
	breakers []breaker
	sampler  *rng.Categorical // nil when every detector is quarantined
	probs    []float64        // sampler.Probs() cached per rebuild for pick
	windows  uint64           // pool-wide processed-window counter

	quarantines uint64
	restores    uint64

	// ins/tracer mirror transitions into the observability layer; both
	// are attached after construction and may be nil in unit tests.
	ins    *instruments
	tracer *obs.Tracer
}

func newHealthBoard(r *core.RHMD, threshold int, probeAfter uint64) *healthBoard {
	b := &healthBoard{
		rhmd:       r,
		threshold:  threshold,
		probeAfter: probeAfter,
		breakers:   make([]breaker, r.Size()),
	}
	b.rebuildLocked()
	return b
}

// attach wires the board to the engine's instruments and tracer and
// publishes the initial weight/state gauges. Must be called before the
// board sees traffic.
func (b *healthBoard) attach(ins *instruments, tracer *obs.Tracer) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ins = ins
	b.tracer = tracer
	b.publishLocked()
}

// retire detaches the board from the shared instruments and tracer.
// SwapPool calls it on the outgoing generation right after publishing
// the new one: verdicts still in flight against the old pool keep
// completing (report/pick work fine detached), but their breaker
// transitions and weight updates no longer overwrite the serving
// generation's gauges — without this, one slow old-generation verdict
// landing after the swap republishes retired state over live state.
func (b *healthBoard) retire() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.ins = nil
	b.tracer = nil
}

// publishLocked refreshes the per-detector weight/state gauges and the
// live-pool gauge from current breaker state. Callers hold mu.
func (b *healthBoard) publishLocked() {
	if b.ins == nil {
		return
	}
	var probs []float64
	if b.sampler != nil {
		probs = b.sampler.Probs()
	}
	live := 0
	for i := range b.breakers {
		st := b.breakers[i].state
		b.ins.state[i].Set(float64(st))
		w := 0.0
		if probs != nil && st == Closed {
			w = probs[i]
		}
		b.ins.weight[i].Set(w)
		if st == Closed || st == HalfOpen {
			live++
		}
	}
	b.ins.poolLive.Set(float64(live))
}

// rebuildLocked recomputes the live sampler from breaker states. Callers
// must hold mu (or have exclusive access during construction).
func (b *healthBoard) rebuildLocked() {
	live := make([]bool, len(b.breakers))
	any := false
	for i := range b.breakers {
		if b.breakers[i].state == Closed {
			live[i] = true
			any = true
		}
	}
	if !any {
		b.sampler = nil
		b.probs = nil
		return
	}
	cat, err := b.rhmd.LiveSampler(live)
	if err != nil {
		// Unreachable: live is non-empty and weights come from a
		// validated RHMD. Treat as all-dead rather than crash the engine.
		b.sampler = nil
		b.probs = nil
		return
	}
	b.sampler = cat
	// Cache the renormalized distribution: pick reports the drawn
	// detector's weight on every window and must not re-derive the
	// slice per draw.
	b.probs = cat.Probs()
}

// pick selects the detector for the next window. An Open breaker that
// has cooled down for probeAfter windows moves to HalfOpen and receives
// this window as its probe; otherwise the window is routed by sampling
// the renormalized live distribution. It returns index -1 when no
// detector is available (all quarantined, none probe-eligible) — the
// caller must count that window as dropped, never lose it silently.
// weight is the drawn detector's renormalized switching probability at
// draw time (0 for probes and dropped picks) — the draw-span latency
// attribution the verdict trace records.
func (b *healthBoard) pick(src *rng.Source) (idx int, probe bool, weight float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for i := range b.breakers {
		br := &b.breakers[i]
		if br.state == Open && b.windows-br.openedAt >= b.probeAfter {
			br.state = HalfOpen
			if b.ins != nil {
				b.ins.state[i].Set(float64(HalfOpen))
			}
			b.tracer.Emit(obs.Event{Kind: obs.EvProbe, Detector: i, Window: -1})
			return i, true, 0
		}
	}
	if b.sampler == nil {
		return -1, false, 0
	}
	idx = b.sampler.Sample(src)
	if b.ins != nil {
		// Draw counters let a scrape check the empirical switching
		// distribution against the renormalized LiveSampler weights.
		b.ins.draws[idx].Inc()
	}
	return idx, false, b.probs[idx]
}

// liveFallbacks returns the live detector indices excluding exclude,
// ordered by descending switching weight (ties by index), for degraded
// re-classification of a window whose chosen detector failed.
func (b *healthBoard) liveFallbacks(exclude int) []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	var out []int
	for i := range b.breakers {
		if i != exclude && b.breakers[i].state == Closed {
			out = append(out, i)
		}
	}
	probs := b.rhmd.Probs
	for i := 1; i < len(out); i++ {
		for j := i; j > 0 && probs[out[j]] > probs[out[j-1]]; j-- {
			out[j], out[j-1] = out[j-1], out[j]
		}
	}
	return out
}

// cancelProbe reverts a HalfOpen breaker to Open. Workers call it for
// probe windows that were scheduled but never classified (a trailing
// partial window, an extraction error, shutdown mid-program), so an
// unanswered probe cannot wedge the breaker in HalfOpen; the detector
// stays probe-eligible and is retried on the next pick.
func (b *healthBoard) cancelProbe(idx int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.breakers[idx].state == HalfOpen {
		b.breakers[idx].state = Open
		if b.ins != nil {
			b.ins.state[idx].Set(float64(Open))
		}
	}
}

// windowDone advances the pool-wide window counter (the clock that
// drives probe cooldowns).
func (b *healthBoard) windowDone() {
	b.mu.Lock()
	b.windows++
	b.mu.Unlock()
}

// report records one classification outcome for detector idx and runs
// the breaker state machine. It returns true when the live set changed
// (quarantine or restore), which the engine surfaces in its stats.
// exemplarID, when non-empty, is the verdict trace ID attached to the
// latency observation as an OpenMetrics exemplar. The join back to
// /traces is best-effort: exemplars are recorded before the tail
// sampler decides keep/drop, so a bucket's exemplar may name a trace
// that was later recycled (DESIGN.md §"Verdict tracing"). Slow buckets
// overwhelmingly carry resolvable IDs, since slow is a keep reason.
func (b *healthBoard) report(idx int, ok bool, latency time.Duration, exemplarID string) (quarantined, restored bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := &b.breakers[idx]
	br.calls++
	br.latencyNs += latency.Nanoseconds()
	if b.ins != nil {
		b.ins.latency[idx].ObserveExemplar(latency.Seconds(), exemplarID, 0)
	}
	if ok {
		br.consecFails = 0
		if br.state == HalfOpen {
			// Probe succeeded: the detector rejoins the pool and the
			// switching distribution is renormalized back over it.
			br.state = Closed
			b.restores++
			b.rebuildLocked()
			if b.ins != nil {
				b.ins.restores.Inc()
			}
			b.publishLocked()
			b.tracer.Emit(obs.Event{Kind: obs.EvRestore, Detector: idx, Window: -1, Detail: "probe succeeded"})
			return false, true
		}
		return false, false
	}
	br.failures++
	br.consecFails++
	switch br.state {
	case HalfOpen:
		// Probe failed: straight back to quarantine, restart cooldown.
		br.state = Open
		br.openedAt = b.windows
		b.publishLocked()
		b.tracer.Emit(obs.Event{Kind: obs.EvQuarantine, Detector: idx, Window: -1, Detail: "probe failed"})
	case Closed:
		if br.consecFails >= b.threshold {
			br.state = Open
			br.openedAt = b.windows
			b.quarantines++
			b.rebuildLocked()
			if b.ins != nil {
				b.ins.quarantines.Inc()
			}
			b.publishLocked()
			b.tracer.Emit(obs.Event{Kind: obs.EvQuarantine, Detector: idx, Window: -1, Detail: "failure threshold reached"})
			return true, false
		}
	}
	return false, false
}

// exportState copies the board into persistable form for a checkpoint:
// per-detector breaker snapshots, the window clock, and the transition
// totals.
func (b *healthBoard) exportState() ([]BreakerSnapshot, uint64, uint64, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]BreakerSnapshot, len(b.breakers))
	for i := range b.breakers {
		br := &b.breakers[i]
		out[i] = BreakerSnapshot{
			State:       br.state,
			ConsecFails: br.consecFails,
			OpenedAt:    br.openedAt,
			Calls:       br.calls,
			Failures:    br.failures,
			LatencyNs:   br.latencyNs,
		}
	}
	return out, b.windows, b.quarantines, b.restores
}

// restoreState loads a checkpointed board into a fresh one: breaker
// states, the window clock, transition totals — then rebuilds the live
// sampler over the restored states. A persisted HalfOpen breaker comes
// back Open: its probe window died with the process, and cancelProbe
// semantics apply (the detector stays probe-eligible).
func (b *healthBoard) restoreState(brs []BreakerSnapshot, windows, quarantines, restores uint64) error {
	b.mu.Lock()
	defer b.mu.Unlock()
	if len(brs) != len(b.breakers) {
		return fmt.Errorf("monitor: restoring %d breakers into a pool of %d", len(brs), len(b.breakers))
	}
	for i, snap := range brs {
		st := snap.State
		if st != Closed && st != Open && st != HalfOpen {
			return fmt.Errorf("monitor: restoring breaker %d with invalid state %d", i, st)
		}
		if st == HalfOpen {
			st = Open
		}
		b.breakers[i] = breaker{
			state:       st,
			consecFails: snap.ConsecFails,
			openedAt:    snap.OpenedAt,
			calls:       snap.Calls,
			failures:    snap.Failures,
			latencyNs:   snap.LatencyNs,
		}
	}
	b.windows = windows
	b.quarantines = quarantines
	b.restores = restores
	b.rebuildLocked()
	b.publishLocked()
	return nil
}

// applyTransition replays one WAL-logged live-set change (quarantine or
// restore) on top of a restored snapshot.
func (b *healthBoard) applyTransition(idx int, restored bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	br := &b.breakers[idx]
	if restored {
		br.state = Closed
		br.consecFails = 0
		b.restores++
	} else {
		br.state = Open
		br.openedAt = b.windows
		if br.consecFails < b.threshold {
			br.consecFails = b.threshold
		}
		b.quarantines++
	}
	b.rebuildLocked()
	b.publishLocked()
}

// advanceClock moves the window clock forward by n windows (WAL verdict
// replay: the windows of a completed program all passed the clock).
func (b *healthBoard) advanceClock(n uint64) {
	b.mu.Lock()
	b.windows += n
	b.mu.Unlock()
}

// republish refreshes the observability gauges after a restore.
func (b *healthBoard) republish() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.publishLocked()
}

// snapshot copies per-detector health into stats rows.
func (b *healthBoard) snapshot() ([]DetectorStats, uint64, uint64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]DetectorStats, len(b.breakers))
	var probs []float64
	if b.sampler != nil {
		probs = b.sampler.Probs()
	}
	for i := range b.breakers {
		br := &b.breakers[i]
		ds := DetectorStats{
			Spec:     b.rhmd.Detectors[i].Spec.String(),
			State:    br.state,
			Calls:    br.calls,
			Failures: br.failures,
		}
		if probs != nil && br.state == Closed {
			ds.Weight = probs[i]
		}
		if br.calls > 0 {
			ds.AvgLatency = time.Duration(br.latencyNs / int64(br.calls))
		}
		out[i] = ds
	}
	return out, b.quarantines, b.restores
}
