package monitor

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"syscall"
	"testing"
	"time"

	"rhmd/internal/checkpoint"
	"rhmd/internal/core"
)

const (
	crashChildEnv = "RHMD_CRASH_CHILD_DIR"
	crashChildKey = 0xC4A5
)

// TestCrashChild is the re-exec target for TestKillAndRestart, not a
// test in its own right: it runs a durable engine over the fixture
// corpus and prints "processed N" as each verdict is consumed, so the
// parent knows exactly how many results an observer saw before SIGKILL.
func TestCrashChild(t *testing.T) {
	dir := os.Getenv(crashChildEnv)
	if dir == "" {
		t.Skip("kill-and-restart child process only")
	}
	f := getFixture(t)
	e := durableEngine(t, dir, crashChildKey, nil)
	e.Start(context.Background())
	go func() {
		for _, p := range f.programs {
			for !e.Submit(p) {
				time.Sleep(time.Millisecond)
			}
		}
		e.Close()
	}()
	n := 0
	for rep := range e.Results() {
		if rep.Err != nil {
			fmt.Printf("child error: %v\n", rep.Err)
			os.Exit(1)
		}
		n++
		fmt.Printf("processed %d\n", n)
	}
	// If the parent never kills us, drain cleanly; the parent treats a
	// normal exit as a test setup failure.
	fmt.Println("drained")
}

// TestKillAndRestart is the end-to-end durability proof from the issue:
// SIGKILL a monitoring process mid-stream, restart over the same
// checkpoint directory, and the restored verdict counts cover everything
// a consumer had observed — no acknowledged work is lost.
func TestKillAndRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec kill test skipped in -short mode")
	}
	f := getFixture(t)
	dir := t.TempDir()
	const killAfter = 5

	cmd := exec.Command(os.Args[0], "-test.run=^TestCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(), crashChildEnv+"="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Watch the child's consumed-verdict counter and kill it the moment
	// it acknowledges killAfter results.
	observed := 0
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if n, ok := strings.CutPrefix(line, "processed "); ok {
			v, err := strconv.Atoi(n)
			if err != nil {
				t.Fatalf("child line %q: %v", line, err)
			}
			observed = v
			if observed >= killAfter {
				if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
					t.Fatal(err)
				}
				break
			}
		}
		if line == "drained" {
			t.Fatal("child drained the whole corpus before the parent could kill it")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if observed < killAfter {
		t.Fatalf("child exited after %d results without being killed", observed)
	}
	cmd.Wait() // reaps the killed child; the SIGKILL exit error is expected

	// Restart: a fresh engine over the same pool and directory must
	// recover at least every verdict the consumer observed, and no more
	// than was ever submitted.
	r, err := core.New(f.pool, crashChildKey)
	if err != nil {
		t.Fatal(err)
	}
	store, err := checkpoint.Open(dir, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	e, err := New(r, Config{Workers: 2, TraceLen: f.traceLen, Checkpoint: store})
	if err != nil {
		t.Fatal(err)
	}
	info, err := e.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if info == nil {
		t.Fatal("no checkpoint state survived the kill")
	}
	st := e.Stats()
	got := st.ProgramsProcessed + st.ProgramsFailed
	if got < uint64(observed) {
		t.Fatalf("restored %d verdicts, consumer had observed %d before SIGKILL (info %+v)", got, observed, info)
	}
	if got > uint64(len(f.programs)) {
		t.Fatalf("restored %d verdicts from a %d-program corpus", got, len(f.programs))
	}
	t.Logf("observed %d before kill, restored %d (gen %d, %d WAL entries replayed, torn=%v)",
		observed, got, info.Gen, info.Replayed, info.TornWAL)
}
