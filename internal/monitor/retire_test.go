package monitor

import (
	"testing"
	"time"

	"rhmd/internal/core"
	"rhmd/internal/obs"
	"rhmd/internal/rng"
)

// attached reports whether the board still writes to shared
// instruments, read under the board's own lock (workers may be
// reporting concurrently in engine-level tests).
func (b *healthBoard) attached() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.ins != nil
}

// TestRetiredBoardLeavesGaugesAlone is the regression test for the
// retired-generation metric leak: breaker activity on a board that has
// been retired (its generation swapped out) must not move the shared
// gauges, counters or tracer — one slow old-generation verdict landing
// after a swap used to republish retired weights over the serving
// generation's.
func TestRetiredBoardLeavesGaugesAlone(t *testing.T) {
	reg := obs.NewRegistry()
	pool := shellPool(t, 4)
	ins := newInstruments(reg, pool)
	tracer := obs.NewTracer(16)
	b := newHealthBoard(pool, 3, 10)
	b.attach(ins, tracer)

	spec := pool.Detectors[1].Spec.String()
	gauge := func(snap obs.Snapshot, fam, key string) float64 {
		f, ok := snap[fam]
		if !ok {
			t.Fatalf("family %s missing", fam)
		}
		return f.Children[key].Gauge
	}

	snap := reg.Snapshot()
	if got := gauge(snap, "rhmd_monitor_pool_live", ""); got != 4 {
		t.Fatalf("pool_live after attach = %v, want 4", got)
	}
	weightBefore := gauge(snap, "rhmd_monitor_detector_weight", "1\x00"+spec)
	if weightBefore != 0.25 {
		t.Fatalf("detector 1 weight = %v, want 0.25", weightBefore)
	}

	b.retire()

	// Quarantine detector 1 on the retired board: the board's own state
	// must keep working (in-flight old-generation verdicts still report
	// through it) while the shared surfaces stay untouched.
	for i := 0; i < 3; i++ {
		b.report(1, false, time.Millisecond, "")
	}
	det, quars, _ := b.snapshot()
	if det[1].State != Open || quars != 1 {
		t.Fatalf("retired board state %v/%d quarantines, want open/1 (retire must not disable breakers)",
			det[1].State, quars)
	}
	// pick keeps routing around the quarantined detector, detached.
	src := rng.New(7)
	for i := 0; i < 50; i++ {
		if idx, _, _ := b.pick(src); idx == 1 {
			t.Fatal("retired board sampled its quarantined detector")
		}
	}

	snap = reg.Snapshot()
	if got := gauge(snap, "rhmd_monitor_pool_live", ""); got != 4 {
		t.Errorf("pool_live moved to %v after retired-board quarantine, want 4", got)
	}
	if got := gauge(snap, "rhmd_monitor_detector_state", "1\x00"+spec); got != 0 {
		t.Errorf("detector 1 state gauge = %v after retired-board quarantine, want 0 (closed)", got)
	}
	if got := gauge(snap, "rhmd_monitor_detector_weight", "1\x00"+spec); got != weightBefore {
		t.Errorf("detector 1 weight gauge = %v, want untouched %v", got, weightBefore)
	}
	if got := snap.Counter("rhmd_monitor_breaker_transitions_total"); got != 0 {
		t.Errorf("breaker transitions counter = %d from a retired board, want 0", got)
	}
	if got := snap.Counter("rhmd_monitor_switch_draws_total"); got != 0 {
		t.Errorf("draw counters = %d from a retired board, want 0", got)
	}
	if got := tracer.Emitted(); got != 0 {
		t.Errorf("tracer saw %d events from a retired board, want 0", got)
	}
}

// TestSwapPoolRetiresOldGeneration pins the wiring: SwapPool detaches
// the outgoing generation's board the moment the new one is published.
func TestSwapPoolRetiresOldGeneration(t *testing.T) {
	f := getFixture(t)
	r, err := core.New(f.pool, 0x5AB1)
	if err != nil {
		t.Fatal(err)
	}
	e, err := New(r, Config{Workers: 2, QueueDepth: 8, TraceLen: f.traceLen})
	if err != nil {
		t.Fatal(err)
	}
	old := e.pool.Load()
	if !old.health.attached() {
		t.Fatal("serving generation's board is not attached")
	}
	if _, err := e.SwapPool(variantPool(t, r)); err != nil {
		t.Fatal(err)
	}
	if old.health.attached() {
		t.Fatal("outgoing generation's board still attached after SwapPool")
	}
	if !e.pool.Load().health.attached() {
		t.Fatal("incoming generation's board is not attached")
	}
}
