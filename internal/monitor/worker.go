package monitor

import (
	"context"
	"errors"
	"fmt"
	"math"
	"time"

	"rhmd/internal/features"
	"rhmd/internal/obs"
	"rhmd/internal/obs/span"
	"rhmd/internal/prog"
)

// ErrDeadline marks a classification attempt that outlived the window
// deadline.
var ErrDeadline = errors.New("monitor: window deadline exceeded")

// workerCrash is the panic payload of FaultWorkerCrash. process's
// per-program recover rethrows it instead of converting it to a report
// error, so it escapes to the worker loop's recover and kills the
// worker goroutine — the shard-death signal the fleet supervisor
// restarts on.
type workerCrash struct {
	detector int
	program  string
}

func (wc workerCrash) String() string {
	return fmt.Sprintf("injected worker crash (detector %d, program %q)", wc.detector, wc.program)
}

// process monitors one program end to end: schedule windows over the
// live pool, classify each with fault handling, aggregate the
// majority-rule verdict. A panic anywhere in tracing or extraction is
// converted into a program-level error so one poisoned trace cannot
// take a worker down. tr is the verdict's span trace (nil when verdict
// tracing is off) and wk the enclosing worker span; process hangs
// feature-extraction, draw, classify and vote spans off them.
func (e *Engine) process(ctx context.Context, p *prog.Program, tr *span.Trace, wk *span.Span) (rep Report) {
	started := time.Now()
	// One generation load per program: the whole verdict — scheduling,
	// classification, breaker reporting — runs against this pool even if
	// SwapPool publishes a newer generation mid-program. The report
	// carries the epoch so consumers can attribute it.
	g := e.pool.Load()
	rep = Report{Program: p.Name, Label: p.Label, PoolEpoch: g.epoch}
	defer func() {
		if r := recover(); r != nil {
			if wc, ok := r.(workerCrash); ok {
				// A scripted worker crash must kill the worker, not become
				// a program error; the probe-cancel defer below has already
				// run (LIFO), so no breaker is left wedged half-open.
				panic(wc)
			}
			e.ins.panics.Inc()
			rep.Err = fmt.Errorf("monitor: tracing %q panicked: %v", p.Name, r)
			e.tracer.Emit(obs.Event{Kind: obs.EvPanic, Program: p.Name, Detector: -1, Window: -1, Detail: fmt.Sprint(r)})
		}
	}()

	// Schedule: each window is collected at the period of the detector
	// picked for it, sampled from the renormalized live distribution
	// (exactly DecideTrace's contract, but against the live pool).
	src := g.rhmd.SwitchSource(p)
	var seq []int
	var probes []bool
	resolved := 0
	// The schedule runs one pick ahead of extraction (the trailing
	// partial window is discarded), and errors or shutdown can leave
	// further picks unclassified. A probe pick that never reports would
	// wedge its breaker in HalfOpen, so cancel every unresolved one.
	defer func() {
		for i := resolved; i < len(seq); i++ {
			if probes[i] {
				g.health.cancelProbe(seq[i])
			}
		}
	}()
	feat := tr.StartSpan(span.StageFeatures, wk)
	next := func() int {
		// pick also owns probe routing: a cooled-down quarantined
		// detector is handed this window half-open, and the breaker
		// resolves the probe from the classification outcome.
		ds := tr.StartSpan(span.StageDraw, feat)
		idx, probe, weight := g.health.pick(src)
		if ds != nil {
			ds.Detector, ds.Weight = idx, weight
		}
		tr.EndSpan(ds)
		if probe {
			// A half-open probe window is breaker-affected by
			// definition: the trace shows which draw it rode in on.
			tr.Flag(span.ReasonBreaker)
		}
		seq = append(seq, idx)
		probes = append(probes, probe)
		// One liveness tick per scheduled window, so extraction of a
		// long trace reads as forward motion, not a stall.
		e.progress.Add(1)
		if idx < 0 {
			// Nothing live to schedule for: collect at the pool's
			// smallest period so the stream stays window-aligned; the
			// window itself will be counted as dropped.
			return g.minPeriod()
		}
		return g.rhmd.Detectors[idx].Spec.Period
	}
	ws, err := features.ExtractScheduled(p, next, e.cfg.TraceLen)
	tr.EndSpan(feat)
	if err != nil {
		if feat != nil {
			feat.Err = err.Error()
		}
		rep.Err = fmt.Errorf("monitor: extracting %q: %w", p.Name, err)
		e.tracer.Emit(obs.Event{Kind: obs.EvExtract, Program: p.Name, Detector: -1, Window: -1,
			Dur: time.Since(started), Detail: err.Error()})
		return rep
	}
	e.tracer.Emit(obs.Event{Kind: obs.EvExtract, Program: p.Name, Detector: -1, Window: -1,
		Dur: time.Since(started), Detail: fmt.Sprintf("%d windows", ws.Windows)})

	for w := 0; w < ws.Windows; w++ {
		idx := seq[w]
		cs := tr.StartSpan(span.StageClassify, wk)
		if cs != nil {
			cs.Detector, cs.Window = idx, w
		}
		decision, degraded, ok := e.classifyWindow(ctx, g, p, ws, w, idx, tr, cs)
		tr.EndSpan(cs)
		if err := ctx.Err(); err != nil {
			// Shutdown mid-window: the classify outcome may not have
			// reached the breaker, so leave seq[w] to the probe-cancel
			// defer rather than marking it resolved.
			rep.Err = err
			return rep
		}
		resolved = w + 1
		g.health.windowDone()
		e.progress.Add(1)
		// Window outcomes accumulate on the report only; the registry
		// counters are committed at verdict time (commitVerdict) so the
		// checkpoint layer sees each program's accounting atomically.
		if !ok {
			rep.Dropped++
			tr.Flag(span.ReasonBreaker)
			if cs != nil && cs.Err == "" {
				cs.Err = "no live detector"
			}
			e.tracer.Emit(obs.Event{Kind: obs.EvDropped, Program: p.Name, Detector: idx, Window: w})
			continue
		}
		rep.Windows++
		if degraded {
			rep.Degraded++
			tr.Flag(span.ReasonBreaker)
			e.tracer.Emit(obs.Event{Kind: obs.EvDegraded, Program: p.Name, Detector: idx, Window: w})
		}
		if decision == 1 {
			rep.Flagged++
		}
	}
	vote := tr.StartSpan(span.StageVote, wk)
	rep.Malware = float64(rep.Flagged) >= float64(rep.Windows)/2 && rep.Windows > 0
	tr.EndSpan(vote)
	verdict := "benign"
	if rep.Malware {
		verdict = "malware"
	}
	e.tracer.Emit(obs.Event{Kind: obs.EvVerdict, Program: p.Name, Detector: -1, Window: -1,
		Dur: time.Since(started), Detail: fmt.Sprintf("%s: %d/%d flagged, %d degraded, %d dropped",
			verdict, rep.Flagged, rep.Windows, rep.Degraded, rep.Dropped)})
	return rep
}

// classifyWindow classifies window w, starting with the scheduled
// detector idx and degrading to live fallbacks when it fails. ok=false
// means no detector could classify the window (it is dropped and
// counted). degraded=true means a fallback, not the scheduled detector,
// produced the decision.
func (e *Engine) classifyWindow(ctx context.Context, g *poolGen, p *prog.Program, ws *features.WindowSet, w, idx int, tr *span.Trace, cs *span.Span) (decision int, degraded, ok bool) {
	if idx >= 0 {
		dec, err := e.classify(ctx, g, p, ws, w, idx, tr, cs)
		if err == nil {
			return dec, false, true
		}
		if cs != nil {
			cs.Err = err.Error()
		}
		if ctx.Err() != nil {
			return 0, false, false
		}
	}
	// Degraded mode: the already-collected window is re-scored by the
	// surviving detectors in descending switching weight. Their feature
	// kind may differ from the scheduled detector's, but the window set
	// carries every kind, so survivors classify the same hardware
	// observation through their own feature view. The classify span
	// keeps the scheduled detector and its failure; the trace flags the
	// degradation at the window level.
	for _, fb := range g.health.liveFallbacks(idx) {
		dec, err := e.classify(ctx, g, p, ws, w, fb, tr, nil)
		if err == nil {
			return dec, true, true
		}
		if ctx.Err() != nil {
			return 0, false, false
		}
	}
	return 0, false, false
}

// classify runs one detector over one window with retry-with-backoff,
// reporting the final outcome to the health board. cs, when non-nil,
// is the window's classify span: it accumulates the attempt count, and
// retries flag the trace for the tail sampler.
func (e *Engine) classify(ctx context.Context, g *poolGen, p *prog.Program, ws *features.WindowSet, w, idx int, tr *span.Trace, cs *span.Span) (int, error) {
	d := g.rhmd.Detectors[idx]
	vec := ws.Rows(d.Spec.Kind)[w]
	start := time.Now()
	var lastErr error
	for attempt := 0; attempt <= e.cfg.MaxRetries; attempt++ {
		fc := FaultContext{
			Detector: idx,
			ProgSeed: p.Seed,
			ProgName: p.Name,
			Window:   w,
			Attempt:  attempt,
		}
		if attempt > 0 {
			e.ins.retries.Inc()
			tr.Flag(span.ReasonRetried)
			if cs != nil {
				cs.Attempt = attempt
			}
			e.tracer.Emit(obs.Event{Kind: obs.EvRetry, Program: p.Name, Detector: idx, Window: w, Attempt: attempt})
			if err := e.cfg.Sleep(ctx, e.retryBackoff(fc, attempt)); err != nil {
				return 0, err
			}
		}
		// The injector is consulted here, on the worker goroutine, so the
		// shard-killing faults act on the worker itself; the detector-level
		// faults ride into classifyOnce with the attempt.
		var fault Fault
		if e.cfg.Injector != nil {
			fault = e.cfg.Injector.Fault(fc)
		}
		switch fault.Kind {
		case FaultWedge:
			// Block the worker, not the scored call: the window deadline
			// cannot rescue a wedge, only engine teardown can.
			<-ctx.Done()
			return 0, ctx.Err()
		case FaultWorkerCrash:
			panic(workerCrash{detector: idx, program: p.Name})
		}
		dec, err := e.classifyOnce(ctx, fc, fault, d.ScoreWindow, d.Threshold, vec)
		if err == nil {
			e.commitTransition(g, idx, true, time.Since(start), e.exemplarID(tr))
			return dec, nil
		}
		lastErr = err
		switch {
		case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
			if ctx.Err() != nil {
				return 0, err
			}
		case errors.Is(err, ErrDeadline):
			e.ins.timeouts.Inc()
			e.tracer.Emit(obs.Event{Kind: obs.EvTimeout, Program: p.Name, Detector: idx, Window: w, Attempt: attempt,
				Dur: e.cfg.WindowDeadline})
		}
	}
	tr.Flag(span.ReasonErrored)
	e.commitTransition(g, idx, false, time.Since(start), e.exemplarID(tr))
	return 0, lastErr
}

// retryBackoff returns the jittered wait before retry attempt k (k ≥ 1):
// exponential doubling from Config.RetryBackoff capped at
// RetryBackoffMax, with equal jitter — uniform in [b/2, b) — drawn
// deterministically from the attempt's fault context. The same
// (detector, program, window, attempt) tuple always waits the same
// time, so a rerun reproduces the schedule regardless of worker
// interleaving, while distinct attempts desynchronize instead of
// retrying in lockstep.
func (e *Engine) retryBackoff(fc FaultContext, attempt int) time.Duration {
	b := e.cfg.RetryBackoff
	for i := 1; i < attempt && b < e.cfg.RetryBackoffMax; i++ {
		b <<= 1
	}
	if b > e.cfg.RetryBackoffMax {
		b = e.cfg.RetryBackoffMax
	}
	half := b / 2
	// 53 uniform bits of the mixed context → frac in [0, 1).
	frac := float64(mixFault(fc)>>11) / (1 << 53)
	return half + time.Duration(frac*float64(half))
}

// exemplarID returns the trace ID to attach to latency observations as
// an OpenMetrics exemplar, or "" when exemplars are off or the verdict
// is untraced.
func (e *Engine) exemplarID(tr *span.Trace) string {
	if !e.cfg.Exemplars {
		return ""
	}
	return tr.ID()
}

// classifyOnce is a single deadline-bounded attempt. The detector call
// runs in its own goroutine so a stalled or crashing model is contained:
// panics are recovered into errors and a stall past the window deadline
// is abandoned (the goroutine finishes harmlessly on its own). fault is
// the attempt's injected detector fault, resolved by the caller
// (FaultNone when no injector is configured).
func (e *Engine) classifyOnce(ctx context.Context, fc FaultContext, fault Fault, score func([]float64) float64, threshold float64, vec []float64) (int, error) {
	type outcome struct {
		dec int
		err error
	}
	ch := make(chan outcome, 1)
	//rhmd:ignore goroutineleak deliberate abandonment: a detector stalled past the window deadline is left to finish on its own, and the buffered outcome channel lets it exit without a receiver
	go func() {
		defer func() {
			if r := recover(); r != nil {
				e.ins.panics.Inc()
				e.tracer.Emit(obs.Event{Kind: obs.EvPanic, Program: fc.ProgName, Detector: fc.Detector,
					Window: fc.Window, Attempt: fc.Attempt, Detail: fmt.Sprint(r)})
				ch <- outcome{err: fmt.Errorf("monitor: detector %d panicked: %v", fc.Detector, r)}
			}
		}()
		v := vec
		switch fault.Kind {
		case FaultError:
			ch <- outcome{err: ErrInjected}
			return
		case FaultPanic:
			panic("injected detector fault")
		case FaultLatency:
			time.Sleep(fault.Latency)
		case FaultCorrupt:
			v = make([]float64, len(vec))
			for i := range v {
				v[i] = math.NaN()
			}
		}
		s := score(v)
		if math.IsNaN(s) || math.IsInf(s, 0) {
			ch <- outcome{err: fmt.Errorf("monitor: detector %d produced non-finite score", fc.Detector)}
			return
		}
		dec := 0
		if s >= threshold {
			dec = 1
		}
		ch <- outcome{dec: dec}
	}()
	select {
	case out := <-ch:
		return out.dec, out.err
	case <-time.After(e.cfg.WindowDeadline):
		return 0, ErrDeadline
	case <-ctx.Done():
		return 0, ctx.Err()
	}
}

// minPeriod returns the generation's smallest collection period.
func (g *poolGen) minPeriod() int {
	min := g.rhmd.Detectors[0].Spec.Period
	for _, d := range g.rhmd.Detectors {
		if d.Spec.Period < min {
			min = d.Spec.Period
		}
	}
	return min
}
