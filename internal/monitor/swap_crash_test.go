package monitor

import (
	"bufio"
	"context"
	"fmt"
	"os"
	"os/exec"
	"strings"
	"syscall"
	"testing"
	"time"

	"rhmd/internal/checkpoint"
	"rhmd/internal/core"
)

const (
	swapChildEnv = "RHMD_SWAP_CHILD_DIR"
	swapChildKey = 0x51A9
)

// TestSwapCrashChild is the re-exec target for TestKillMidSwapRestart:
// a durable engine streams the corpus, hot-swaps to a variant pool after
// a few verdicts (printing "swapped" only once SwapPool has returned,
// i.e. the WAL entry is fsynced), and keeps processing until killed.
func TestSwapCrashChild(t *testing.T) {
	dir := os.Getenv(swapChildEnv)
	if dir == "" {
		t.Skip("kill-mid-swap child process only")
	}
	f := getFixture(t)
	e := durableEngine(t, dir, swapChildKey, nil)
	next := variantPool(t, e.Pool())
	e.Start(context.Background())
	go func() {
		for _, p := range f.programs {
			for !e.Submit(p) {
				time.Sleep(time.Millisecond)
			}
		}
		e.Close()
	}()
	n := 0
	for rep := range e.Results() {
		if rep.Err != nil {
			fmt.Printf("child error: %v\n", rep.Err)
			os.Exit(1)
		}
		n++
		if n == 3 {
			if _, err := e.SwapPool(next); err != nil {
				fmt.Printf("child error: swap: %v\n", err)
				os.Exit(1)
			}
			fmt.Println("swapped")
		}
		fmt.Printf("processed %d\n", n)
	}
	fmt.Println("drained")
}

// TestKillMidSwapRestart is the crash half of the swap acceptance: a
// monitoring process is SIGKILLed immediately after acknowledging a hot
// swap; the restart over the same checkpoint directory must land on the
// swapped generation — correct epoch AND fingerprint, resolved through
// ResolvePool — with every observed verdict intact.
func TestKillMidSwapRestart(t *testing.T) {
	if testing.Short() {
		t.Skip("re-exec kill test skipped in -short mode")
	}
	f := getFixture(t)
	dir := t.TempDir()

	cmd := exec.Command(os.Args[0], "-test.run=^TestSwapCrashChild$", "-test.v")
	cmd.Env = append(os.Environ(), swapChildEnv+"="+dir)
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatal(err)
	}
	defer cmd.Process.Kill()

	// Kill the instant the child acknowledges the swap: the WAL entry is
	// durable, the snapshot is not — restore must replay it.
	swapped := false
	observed := 0
	sc := bufio.NewScanner(out)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if n, ok := strings.CutPrefix(line, "processed "); ok {
			fmt.Sscanf(n, "%d", &observed)
		}
		if line == "swapped" {
			swapped = true
			if err := cmd.Process.Signal(syscall.SIGKILL); err != nil {
				t.Fatal(err)
			}
			break
		}
		if line == "drained" {
			t.Fatal("child drained the whole corpus before swapping")
		}
	}
	if err := sc.Err(); err != nil {
		t.Fatal(err)
	}
	if !swapped {
		t.Fatalf("child exited after %d results without acknowledging the swap", observed)
	}
	cmd.Wait()

	// Rebuild the exact same base and variant pools the child used (the
	// variant construction is deterministic) and restore through a
	// resolver that knows both fingerprints.
	r, err := core.New(f.pool, swapChildKey)
	if err != nil {
		t.Fatal(err)
	}
	next := variantPool(t, r)
	store, err := checkpoint.Open(dir, checkpoint.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer store.Close()
	e, err := New(r, Config{Workers: 2, TraceLen: f.traceLen, Checkpoint: store,
		ResolvePool: swapResolver(r, next)})
	if err != nil {
		t.Fatal(err)
	}
	info, err := e.Restore()
	if err != nil {
		t.Fatal(err)
	}
	if info == nil {
		t.Fatal("no checkpoint state survived the kill")
	}
	if e.PoolEpoch() != 1 {
		t.Fatalf("restored pool epoch %d, want 1 (the acknowledged swap)", e.PoolEpoch())
	}
	if e.PoolFingerprint() != next.Fingerprint() {
		t.Fatalf("restored fingerprint %016x, want the swapped pool's %016x",
			e.PoolFingerprint(), next.Fingerprint())
	}
	st := e.Stats()
	got := st.ProgramsProcessed + st.ProgramsFailed
	if got < uint64(observed) {
		t.Fatalf("restored %d verdicts, consumer had observed %d before SIGKILL", got, observed)
	}
	t.Logf("observed %d then swapped; restored epoch %d fingerprint %016x (%d WAL entries, torn=%v)",
		observed, e.PoolEpoch(), e.PoolFingerprint(), info.Replayed, info.TornWAL)
}
