package monitor

import (
	"encoding/json"
	"fmt"
	"strings"
	"time"
)

// DetectorStats is one base detector's health row in a Stats snapshot.
type DetectorStats struct {
	Spec     string       `json:"spec"`
	State    BreakerState `json:"state"`
	Calls    uint64       `json:"calls"`
	Failures uint64       `json:"failures"`
	// Weight is the detector's current renormalized switching weight
	// (zero while quarantined).
	Weight     float64       `json:"weight"`
	AvgLatency time.Duration `json:"avg_latency_ns"`
}

// Stats is a point-in-time snapshot of engine activity. The numbers are
// read back from the observability registry (internal/obs), so a Stats
// call and a /metrics scrape always agree; this struct is the
// programmatic view, the registry is the wire view. Every submitted
// program and every extracted window lands in exactly one of these
// buckets; nothing is dropped silently.
type Stats struct {
	// ProgramsProcessed counts programs fully classified (possibly with
	// degraded windows). ProgramsShed counts submissions rejected by
	// queue backpressure; ProgramsFailed counts trace/extraction errors.
	ProgramsProcessed uint64 `json:"programs_processed"`
	ProgramsShed      uint64 `json:"programs_shed"`
	ProgramsFailed    uint64 `json:"programs_failed"`
	// Windows counts classified windows; Flagged the subset flagged as
	// malware; Degraded the subset classified by a fallback detector
	// after the scheduled one failed; DroppedWindows the windows no live
	// detector could classify.
	Windows        uint64 `json:"windows"`
	Flagged        uint64 `json:"flagged"`
	Degraded       uint64 `json:"degraded"`
	DroppedWindows uint64 `json:"dropped_windows"`
	// ProgramsUndurable counts verdicts withheld under StrictDurability
	// because their WAL append failed: classified, never acked.
	ProgramsUndurable uint64 `json:"programs_undurable"`
	// Retries, Timeouts and Panics count fault-handling events.
	// WorkerCrashes counts worker goroutines lost to escaped panics;
	// CheckpointFailures counts failed WAL appends and snapshot saves.
	Retries            uint64 `json:"retries"`
	Timeouts           uint64 `json:"timeouts"`
	Panics             uint64 `json:"panics"`
	WorkerCrashes      uint64 `json:"worker_crashes"`
	CheckpointFailures uint64 `json:"checkpoint_failures"`
	// QueueDepth, Inflight and WorkersLive are point-in-time liveness
	// gauges: a fleet supervisor reads them to tell a wedged shard
	// (backlog with no progress) from an idle one.
	QueueDepth  uint64 `json:"queue_depth"`
	Inflight    uint64 `json:"inflight"`
	WorkersLive uint64 `json:"workers_live"`
	// PoolEpoch is the serving detector-pool generation (increments per
	// SwapPool, rollbacks included); PoolSwaps counts swaps this engine
	// process published (not restored across restarts — the epoch is).
	PoolEpoch uint64 `json:"pool_epoch"`
	PoolSwaps uint64 `json:"pool_swaps"`
	// Quarantines and Restores count breaker transitions; Detectors
	// holds the per-detector health rows.
	Quarantines uint64          `json:"quarantines"`
	Restores    uint64          `json:"restores"`
	Detectors   []DetectorStats `json:"detectors"`
}

// MarshalText renders the breaker state name, which is also how it
// appears in JSON output.
func (s BreakerState) MarshalText() ([]byte, error) { return []byte(s.String()), nil }

// UnmarshalText parses a breaker state name (the MarshalText inverse,
// used when decoding checkpointed breaker snapshots).
func (s *BreakerState) UnmarshalText(text []byte) error {
	for i, name := range breakerNames {
		if string(text) == name {
			*s = BreakerState(i)
			return nil
		}
	}
	return fmt.Errorf("monitor: unknown breaker state %q", text)
}

// LivePool returns how many detectors are currently serving traffic.
// Half-open detectors count: they are receiving probe windows, so they
// are serving (at reduced volume), not dead.
func (s Stats) LivePool() int {
	n := 0
	for _, d := range s.Detectors {
		if d.State == Closed || d.State == HalfOpen {
			n++
		}
	}
	return n
}

// HalfOpen returns how many detectors are mid-probe.
func (s Stats) HalfOpen() int {
	n := 0
	for _, d := range s.Detectors {
		if d.State == HalfOpen {
			n++
		}
	}
	return n
}

// MarshalJSON emits the snapshot plus the derived pool summary
// (live/half-open/size), so machine consumers get the same rollup the
// String report prints.
func (s Stats) MarshalJSON() ([]byte, error) {
	type alias Stats // shed methods to avoid recursion
	return json.Marshal(struct {
		alias
		LivePool     int `json:"live_pool"`
		HalfOpenPool int `json:"half_open_pool"`
		PoolSize     int `json:"pool_size"`
	}{alias(s), s.LivePool(), s.HalfOpen(), len(s.Detectors)})
}

// String renders the snapshot as a small survival report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "programs: %d processed, %d failed; %d shed submissions (callers may retry)\n",
		s.ProgramsProcessed, s.ProgramsFailed, s.ProgramsShed)
	fmt.Fprintf(&b, "windows:  %d classified (%d flagged, %d degraded), %d dropped\n",
		s.Windows, s.Flagged, s.Degraded, s.DroppedWindows)
	fmt.Fprintf(&b, "faults:   %d retries, %d timeouts, %d panics, %d quarantines, %d restores\n",
		s.Retries, s.Timeouts, s.Panics, s.Quarantines, s.Restores)
	if s.WorkerCrashes > 0 || s.CheckpointFailures > 0 || s.ProgramsUndurable > 0 {
		fmt.Fprintf(&b, "damage:   %d worker crashes, %d checkpoint failures, %d undurable verdicts withheld\n",
			s.WorkerCrashes, s.CheckpointFailures, s.ProgramsUndurable)
	}
	fmt.Fprintf(&b, "pool:     %d/%d detectors live (%d half-open)\n",
		s.LivePool(), len(s.Detectors), s.HalfOpen())
	for i, d := range s.Detectors {
		fmt.Fprintf(&b, "  [%d] %-26s %-9s w=%.3f calls=%-6d fails=%-5d avg=%s\n",
			i, d.Spec, d.State, d.Weight, d.Calls, d.Failures, d.AvgLatency)
	}
	return b.String()
}
