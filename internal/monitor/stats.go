package monitor

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// counters is the engine's hot-path accounting, all atomics so workers
// never contend on a lock for bookkeeping.
type counters struct {
	programs       atomic.Uint64
	programsShed   atomic.Uint64
	programsFailed atomic.Uint64
	windows        atomic.Uint64
	flagged        atomic.Uint64
	degraded       atomic.Uint64
	droppedWindows atomic.Uint64
	retries        atomic.Uint64
	timeouts       atomic.Uint64
	panics         atomic.Uint64
}

// DetectorStats is one base detector's health row in a Stats snapshot.
type DetectorStats struct {
	Spec     string
	State    BreakerState
	Calls    uint64
	Failures uint64
	// Weight is the detector's current renormalized switching weight
	// (zero while quarantined).
	Weight     float64
	AvgLatency time.Duration
}

// Stats is a point-in-time snapshot of engine activity — the seam a
// future observability layer (metrics export, dashboards) hangs off.
// Every submitted program and every extracted window lands in exactly
// one of these buckets; nothing is dropped silently.
type Stats struct {
	// ProgramsProcessed counts programs fully classified (possibly with
	// degraded windows). ProgramsShed counts submissions rejected by
	// queue backpressure; ProgramsFailed counts trace/extraction errors.
	ProgramsProcessed uint64
	ProgramsShed      uint64
	ProgramsFailed    uint64
	// Windows counts classified windows; Flagged the subset flagged as
	// malware; Degraded the subset classified by a fallback detector
	// after the scheduled one failed; DroppedWindows the windows no live
	// detector could classify.
	Windows        uint64
	Flagged        uint64
	Degraded       uint64
	DroppedWindows uint64
	// Retries, Timeouts and Panics count fault-handling events.
	Retries  uint64
	Timeouts uint64
	Panics   uint64
	// Quarantines and Restores count breaker transitions; Detectors
	// holds the per-detector health rows.
	Quarantines uint64
	Restores    uint64
	Detectors   []DetectorStats
}

// LivePool returns how many detectors are currently serving traffic.
func (s Stats) LivePool() int {
	n := 0
	for _, d := range s.Detectors {
		if d.State == Closed {
			n++
		}
	}
	return n
}

// String renders the snapshot as a small survival report.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "programs: %d processed, %d failed; %d shed submissions (callers may retry)\n",
		s.ProgramsProcessed, s.ProgramsFailed, s.ProgramsShed)
	fmt.Fprintf(&b, "windows:  %d classified (%d flagged, %d degraded), %d dropped\n",
		s.Windows, s.Flagged, s.Degraded, s.DroppedWindows)
	fmt.Fprintf(&b, "faults:   %d retries, %d timeouts, %d panics, %d quarantines, %d restores\n",
		s.Retries, s.Timeouts, s.Panics, s.Quarantines, s.Restores)
	fmt.Fprintf(&b, "pool:     %d/%d detectors live\n", s.LivePool(), len(s.Detectors))
	for i, d := range s.Detectors {
		fmt.Fprintf(&b, "  [%d] %-26s %-9s w=%.3f calls=%-6d fails=%-5d avg=%s\n",
			i, d.Spec, d.State, d.Weight, d.Calls, d.Failures, d.AvgLatency)
	}
	return b.String()
}
