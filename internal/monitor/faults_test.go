package monitor

import (
	"reflect"
	"testing"
	"time"
)

func TestInjectorDeterministicPerContext(t *testing.T) {
	a := NewInjector(7)
	b := NewInjector(7)
	p := Profile{ErrorRate: 0.25, PanicRate: 0.25, LatencyRate: 0.25, CorruptRate: 0.1, Latency: time.Millisecond}
	a.SetDefault(p)
	b.SetDefault(p)
	for w := 0; w < 200; w++ {
		fc := FaultContext{Detector: w % 4, ProgSeed: uint64(w) * 13, Window: w, Attempt: w % 3}
		fa, fb := a.Fault(fc), b.Fault(fc)
		if fa != fb {
			t.Fatalf("window %d: same seed and context gave %v vs %v", w, fa, fb)
		}
	}
	c := NewInjector(8)
	c.SetDefault(p)
	diff := false
	for w := 0; w < 200; w++ {
		fc := FaultContext{Detector: w % 4, ProgSeed: uint64(w) * 13, Window: w}
		if a.Fault(fc) != c.Fault(fc) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("different injector seeds produced identical fault streams")
	}
}

func TestInjectorRates(t *testing.T) {
	in := NewInjector(99)
	in.SetProfile(2, Profile{ErrorRate: 0.5, LatencyRate: 0.2, Latency: time.Millisecond})
	var errs, lats, none int
	const n = 4000
	for w := 0; w < n; w++ {
		switch f := in.Fault(FaultContext{Detector: 2, ProgSeed: 1234, Window: w}); f.Kind {
		case FaultError:
			errs++
		case FaultLatency:
			lats++
			if f.Latency != time.Millisecond {
				t.Fatalf("latency fault lost its duration: %v", f.Latency)
			}
		case FaultNone:
			none++
		default:
			t.Fatalf("unconfigured fault kind %v", f.Kind)
		}
	}
	if got := float64(errs) / n; got < 0.45 || got > 0.55 {
		t.Fatalf("error rate %.3f, want ~0.5", got)
	}
	if got := float64(lats) / n; got < 0.15 || got > 0.25 {
		t.Fatalf("latency rate %.3f, want ~0.2", got)
	}
	// Unconfigured detectors see no faults.
	for w := 0; w < 50; w++ {
		if f := in.Fault(FaultContext{Detector: 0, Window: w}); f.Kind != FaultNone {
			t.Fatalf("detector without profile got fault %v", f.Kind)
		}
	}
}

func TestInjectorUntilRecovers(t *testing.T) {
	in := NewInjector(5)
	in.SetProfile(1, Profile{ErrorRate: 1, Until: 3})
	for w := 0; w < 3; w++ {
		if f := in.Fault(FaultContext{Detector: 1, Window: w}); f.Kind != FaultError {
			t.Fatalf("call %d: want forced error, got %v", w, f.Kind)
		}
	}
	// Retries of the last faulted window do not advance the counter.
	if f := in.Fault(FaultContext{Detector: 1, Window: 2, Attempt: 1}); f.Kind != FaultError {
		t.Fatalf("retry after cutoff boundary got %v", f.Kind)
	}
	for w := 3; w < 6; w++ {
		if f := in.Fault(FaultContext{Detector: 1, Window: w}); f.Kind != FaultNone {
			t.Fatalf("call %d: detector should have recovered, got %v", w, f.Kind)
		}
	}
}

// TestParseShardScript: the CLI chaos syntax round-trips into shard
// faults, and malformed scripts fail loudly instead of silently
// running the wrong scenario.
func TestParseShardScript(t *testing.T) {
	s, err := ParseShardScript("1:wedge:25, 0:crash-at-byte:4096,2:panic:10")
	if err != nil {
		t.Fatal(err)
	}
	want := []ShardFault{
		{Shard: 1, Kind: ShardWedgeQueue, Arg: 25},
		{Shard: 0, Kind: ShardCrashAtByte, Arg: 4096},
		{Shard: 2, Kind: ShardPanicWorker, Arg: 10},
	}
	if !reflect.DeepEqual(s.Faults, want) {
		t.Fatalf("parsed %+v, want %+v", s.Faults, want)
	}
	if got := s.ForShard(0); len(got) != 1 || got[0].Kind != ShardCrashAtByte {
		t.Fatalf("ForShard(0) = %+v", got)
	}
	if got := s.ForShard(9); got != nil {
		t.Fatalf("ForShard(9) = %+v, want nil", got)
	}

	if s, err := ParseShardScript(""); s != nil || err != nil {
		t.Fatalf("empty script parsed to %+v, %v", s, err)
	}
	for _, bad := range []string{"1:wedge", "x:wedge:1", "-1:wedge:1", "1:meteor:1", "1:wedge:many"} {
		if _, err := ParseShardScript(bad); err == nil {
			t.Errorf("script %q parsed without error", bad)
		}
	}
}
