package monitor

import (
	"math"
	"testing"
	"time"

	"rhmd/internal/core"
	"rhmd/internal/features"
	"rhmd/internal/hmd"
	"rhmd/internal/rng"
)

// shellPool builds an RHMD over untrained detector shells — the health
// board only reads specs and switching weights, so no training is
// needed for breaker unit tests.
func shellPool(t *testing.T, n int) *core.RHMD {
	t.Helper()
	dets := make([]*hmd.Detector, n)
	for i := range dets {
		dets[i] = &hmd.Detector{Spec: hmd.Spec{Kind: features.Memory, Period: 1000, Algo: "lr"}}
	}
	r, err := core.New(dets, 1)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestBreakerQuarantineAndRenormalize(t *testing.T) {
	b := newHealthBoard(shellPool(t, 4), 3, 10)
	// Two failures keep the breaker closed; the third opens it.
	for i := 0; i < 2; i++ {
		if q, _ := b.report(1, false, time.Millisecond, ""); q {
			t.Fatalf("quarantined after %d failures", i+1)
		}
	}
	q, _ := b.report(1, false, time.Millisecond, "")
	if !q {
		t.Fatal("threshold failure did not quarantine")
	}
	det, quars, _ := b.snapshot()
	if det[1].State != Open {
		t.Fatalf("state %v, want open", det[1].State)
	}
	if quars != 1 {
		t.Fatalf("quarantines %d", quars)
	}
	// Survivors renormalize to 1/3 each, quarantined weight drops to 0.
	for i, d := range det {
		want := 1.0 / 3
		if i == 1 {
			want = 0
		}
		if math.Abs(d.Weight-want) > 1e-12 {
			t.Fatalf("detector %d weight %.4f, want %.4f", i, d.Weight, want)
		}
	}
	// The quarantined detector is never sampled.
	src := rng.New(9)
	for i := 0; i < 500; i++ {
		idx, probe, w := b.pick(src)
		if probe {
			t.Fatal("probe before cooldown")
		}
		if idx == 1 {
			t.Fatal("sampled a quarantined detector")
		}
		// Every live draw reports its renormalized switching weight.
		if math.Abs(w-1.0/3) > 1e-12 {
			t.Fatalf("draw weight %.4f, want 1/3", w)
		}
		b.windowDone()
		if i == 8 {
			break // stop just before the probe window
		}
	}
}

func TestBreakerSuccessResetsStreak(t *testing.T) {
	b := newHealthBoard(shellPool(t, 2), 3, 10)
	b.report(0, false, 0, "")
	b.report(0, false, 0, "")
	b.report(0, true, 0, "")
	b.report(0, false, 0, "")
	b.report(0, false, 0, "")
	if det, _, _ := b.snapshot(); det[0].State != Closed {
		t.Fatal("interleaved success did not reset the failure streak")
	}
}

func TestBreakerProbeRestoreAndRequarantine(t *testing.T) {
	b := newHealthBoard(shellPool(t, 3), 1, 5)
	b.report(2, false, 0, "") // threshold 1: quarantine immediately
	src := rng.New(3)
	for i := 0; i < 5; i++ {
		if _, probe, _ := b.pick(src); probe {
			t.Fatalf("probe fired after %d windows, cooldown is 5", i)
		}
		b.windowDone()
	}
	idx, probe, w := b.pick(src)
	if !probe || idx != 2 {
		t.Fatalf("want probe of detector 2 after cooldown, got idx=%d probe=%v", idx, probe)
	}
	if w != 0 {
		t.Fatalf("probe pick carries weight %.4f, want 0", w)
	}
	// Failed probe: straight back to quarantine, no restore counted.
	b.report(2, false, 0, "")
	if det, _, restores := b.snapshot(); det[2].State != Open || restores != 0 {
		t.Fatalf("failed probe: state %v restores %d", det[2].State, restores)
	}
	for i := 0; i < 5; i++ {
		b.windowDone()
	}
	idx, probe, _ = b.pick(src)
	if !probe || idx != 2 {
		t.Fatalf("second probe not offered: idx=%d probe=%v", idx, probe)
	}
	// Successful probe restores the detector and its weight.
	b.report(2, true, 0, "")
	det, _, restores := b.snapshot()
	if det[2].State != Closed || restores != 1 {
		t.Fatalf("restore failed: state %v restores %d", det[2].State, restores)
	}
	if math.Abs(det[2].Weight-1.0/3) > 1e-12 {
		t.Fatalf("restored weight %.4f, want 1/3", det[2].Weight)
	}
}

func TestCancelProbeReopens(t *testing.T) {
	b := newHealthBoard(shellPool(t, 2), 1, 2)
	b.report(0, false, 0, "")
	b.windowDone()
	b.windowDone()
	idx, probe, _ := b.pick(rng.New(1))
	if !probe || idx != 0 {
		t.Fatalf("no probe offered: idx=%d probe=%v", idx, probe)
	}
	b.cancelProbe(0)
	det, _, _ := b.snapshot()
	if det[0].State != Open {
		t.Fatalf("cancelled probe left state %v", det[0].State)
	}
	// Still probe-eligible on the next pick.
	if idx, probe, _ = b.pick(rng.New(1)); !probe || idx != 0 {
		t.Fatal("cancelled probe lost eligibility")
	}
}

func TestAllQuarantinedPickDrops(t *testing.T) {
	b := newHealthBoard(shellPool(t, 2), 1, 1000)
	b.report(0, false, 0, "")
	b.report(1, false, 0, "")
	idx, probe, _ := b.pick(rng.New(1))
	if idx != -1 || probe {
		t.Fatalf("all-dead pool picked idx=%d probe=%v", idx, probe)
	}
}
