package monitor

import (
	"context"
	"sync"
	"testing"
	"time"

	"rhmd/internal/core"
)

// sleepRec is a recording Config.Sleep fake: it never waits, it only
// remembers what the engine asked for.
type sleepRec struct {
	mu sync.Mutex
	ds []time.Duration
}

func (s *sleepRec) sleep(_ context.Context, d time.Duration) error {
	s.mu.Lock()
	s.ds = append(s.ds, d)
	s.mu.Unlock()
	return nil
}

func (s *sleepRec) waits() []time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]time.Duration(nil), s.ds...)
}

// TestRetryBackoffJitterBounds: the per-attempt backoff doubles from
// the base, caps at RetryBackoffMax, jitters uniformly within
// [b/2, b), and is a pure function of the fault context — the
// determinism the reproducible-run contract needs.
func TestRetryBackoffJitterBounds(t *testing.T) {
	f := getFixture(t)
	r, err := core.New(f.pool, 0xB0FF)
	if err != nil {
		t.Fatal(err)
	}
	base, cap := time.Millisecond, 8*time.Millisecond
	e, err := New(r, Config{RetryBackoff: base, RetryBackoffMax: cap})
	if err != nil {
		t.Fatal(err)
	}
	fc := FaultContext{Detector: 1, ProgSeed: 42, ProgName: "x", Window: 3}
	for attempt := 1; attempt <= 6; attempt++ {
		fc.Attempt = attempt
		b := base << (attempt - 1)
		if b > cap {
			b = cap
		}
		d := e.retryBackoff(fc, attempt)
		if d < b/2 || d >= b {
			t.Fatalf("attempt %d backoff %v outside [%v, %v)", attempt, d, b/2, b)
		}
		if again := e.retryBackoff(fc, attempt); again != d {
			t.Fatalf("attempt %d backoff not deterministic: %v then %v", attempt, d, again)
		}
	}
	// Jitter must vary with the context, or concurrent retries stampede
	// in lockstep.
	distinct := map[time.Duration]bool{}
	for w := 0; w < 8; w++ {
		fc := FaultContext{Detector: 1, ProgSeed: 42, Window: w, Attempt: 1}
		distinct[e.retryBackoff(fc, 1)] = true
	}
	if len(distinct) < 2 {
		t.Fatalf("8 windows produced %d distinct jittered backoffs", len(distinct))
	}
}

// TestBackoffScheduleUnderInjector: with every classification failing,
// the engine's recorded sleep schedule is exactly the jittered
// exponential ladder — every wait inside its attempt's band, both
// bands exercised — and bit-identical across reruns.
func TestBackoffScheduleUnderInjector(t *testing.T) {
	f := getFixture(t)
	base := time.Millisecond

	run := func() []time.Duration {
		r, err := core.New(f.pool, 0xB0FF)
		if err != nil {
			t.Fatal(err)
		}
		in := NewInjector(9)
		in.SetDefault(Profile{ErrorRate: 1})
		rec := &sleepRec{}
		e, err := New(r, Config{
			Workers: 1, QueueDepth: 4, TraceLen: f.traceLen,
			WindowDeadline: 2 * time.Second, MaxRetries: 2,
			RetryBackoff: base, RetryBackoffMax: 8 * base,
			// Breakers out of the picture: the schedule under test is the
			// backoff ladder, not pool degradation.
			FailureThreshold: 1 << 30,
			Injector:         in, Sleep: rec.sleep,
		})
		if err != nil {
			t.Fatal(err)
		}
		e.Start(context.Background())
		if !e.Submit(f.programs[0]) {
			t.Fatal("submit shed")
		}
		e.Close()
		for range e.Results() {
		}
		return rec.waits()
	}

	waits := run()
	if len(waits) == 0 {
		t.Fatal("all-failing run recorded no backoff waits")
	}
	band1, band2 := 0, 0
	for _, d := range waits {
		switch {
		case d >= base/2 && d < base:
			band1++
		case d >= base && d < 2*base:
			band2++
		default:
			t.Fatalf("wait %v outside both attempt bands [%v,%v) and [%v,%v)", d, base/2, base, base, 2*base)
		}
	}
	if band1 == 0 || band2 == 0 {
		t.Fatalf("schedule missing an attempt band: %d first-retry, %d second-retry waits", band1, band2)
	}
	if band1 != band2 {
		// MaxRetries=2 and every attempt fails, so retries come in
		// (attempt 1, attempt 2) pairs.
		t.Fatalf("unpaired retries: %d first-retry vs %d second-retry waits", band1, band2)
	}

	again := run()
	if len(again) != len(waits) {
		t.Fatalf("rerun recorded %d waits, first run %d", len(again), len(waits))
	}
	for i := range waits {
		if waits[i] != again[i] {
			t.Fatalf("wait %d differs across reruns: %v vs %v", i, waits[i], again[i])
		}
	}
}
